//! The UniviStor job: server processes, tier stores, connection management
//! (§II-A).
//!
//! `UniviStorJob` is the shared state of all UniviStor server processes
//! launched across a job's compute nodes. It owns the per-client DHP log
//! chains (the paper's mmap'd shared-memory logs — they outlive client
//! operations and die with the job unless flushed), the distributed
//! metadata service, the destination Lustre file system, and the workflow
//! state file. Client-side drivers (`crate::driver`) call into it; the
//! bench harness calls the same methods rank-by-rank at paper scale.
//!
//! The data plane comes in two interchangeable flavors, selected by
//! [`Runtime`](crate::config::Runtime):
//!
//! * **Locked** (the default): the job state is decomposed into
//!   independently locked shards so that operations by different clients
//!   proceed in parallel — the in-process analogue of the contention
//!   avoidance the paper builds at system scale (per-process logs,
//!   range-partitioned metadata servers): the file table and connection
//!   set are `RwLock`ed and read-mostly, file ids come from an atomic,
//!   every client's chain has its own lock ([`ChainSet`]), the metadata
//!   KV locks per shard, and Lustre sits behind one `RwLock` whose read
//!   path takes only the shared side. See DESIGN.md §"Concurrency model"
//!   for the shard map and the lock acquisition order.
//! * **Partitioned**: a shared-nothing pool of partition workers
//!   exclusively owns the same state sliced by ownership (KV partitions,
//!   node buffers, chains, heat shards) with no interior locks; the write
//!   and read paths below become routing layers that partition each
//!   planned batch by owner and await batched replies over bounded
//!   mailboxes (see [`crate::runtime`] and DESIGN.md §13). The two
//!   runtimes are byte-identical by construction and pinned so by the
//!   differential tests in `tests/runtime.rs`.
//!
//! Every hot path reports into the job's [`JobMetrics`] panel;
//! [`UniviStorJob::metrics`] snapshots it. The legacy [`JobStats`] view is
//! *derived* from those same counters (plus the structured leftovers the
//! panel cannot hold: flush receipts and the per-client byte map), so the
//! two can never disagree.

use crate::config::{FlushPipeline, Runtime, UniviStorConfig, WritePipeline};
use crate::error::{Error, Result};
use crate::fault::{with_retries, FaultInjector};
use crate::flush::{flush_file, flush_with_source, FlushReceipt};
use crate::metadata::{ClientId, MetadataService, SegKey, SegmentRecord};
use crate::metrics::{JobMetrics, ScalarValues, WriteLockCounts};
use crate::placement::{healthy_buddy, layer_caps_with_node_local, ChainSet, ProcChain};
use crate::read::{
    classify_fragment, fetch_span, finish_fragment, plan_fragments, ReadLockCounts, ReadService,
    ReadState, ReadTrace,
};
use crate::repair::{repair_file, RepairReport};
use crate::runtime::{LockedCore, PartitionedCore};
use crate::scrub::{run_scrub_pass, CorruptQueue, ScrubCtx, ScrubHandle, ScrubReport, ScrubState};
use crate::tiering::{
    run_pass, PassCtx, PassOptions, TieringHandle, TieringPassReport, TieringState,
};
use crate::va::{Tier, VirtualAddr};
use crate::workflow::StateFile;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use univistor_mpi::driver::OpenMode;
use univistor_obs::MetricsSnapshot;
use univistor_pfs::Lustre;
use univistor_sim::{Payload, SimError, SimResult};

/// Aggregated operation counters — the timing plane's raw material.
///
/// This is a compatibility view computed from the job's [`JobMetrics`]
/// panel; [`UniviStorJob::metrics`] exposes the full panel (including
/// histograms and spill events this flat shape cannot carry).
#[derive(Debug, Clone, Default)]
pub struct JobStats {
    /// Metadata RPCs hitting the (single, file-name-hashed) server during
    /// open/close. Without COC this grows by the full process count per
    /// collective open — the all-to-one storm.
    pub open_close_md_rpcs: u64,
    /// Collective opens served (root-only under COC).
    pub opens: u64,
    /// Closes served.
    pub closes: u64,
    /// Segments appended.
    pub segments: u64,
    /// Bytes cached per tier.
    pub bytes_by_tier: BTreeMap<Tier, u64>,
    /// Bytes cached per (client, tier) — drives per-socket flow building.
    pub bytes_by_client_tier: HashMap<(ClientId, Tier), u64>,
    /// Metadata-put RPCs from writes.
    pub write_md_rpcs: u64,
    /// Aggregated read accounting.
    pub read_trace: ReadTrace,
    /// Receipts of every flush performed, in order.
    pub flush_receipts: Vec<FlushReceipt>,
    /// Bytes written twice for resilience (replica copies).
    pub replicated_bytes: u64,
    /// Segments promoted to a faster tier by adaptive placement.
    pub promotions: u64,
}

/// One cached file. `size`/`written` are atomics so the data path updates
/// them under the file table's *shared* lock; `open_count` changes only in
/// open/close, which hold the exclusive lock anyway.
#[derive(Debug)]
struct FileEntry {
    fid: u64,
    size: AtomicU64,
    open_count: usize,
    written: AtomicBool,
}

/// Structured accounting the flat metrics panel cannot hold, plus the
/// baseline `stats()` diffs against. Cold-path only (flush completions,
/// stats snapshots), so a plain mutex.
#[derive(Debug)]
struct Accounting {
    /// Counter values at the last `take_stats` — `stats()` reports the
    /// delta since this baseline over the monotonic metrics panel.
    stats_base: ScalarValues,
    flush_receipts: Vec<FlushReceipt>,
    bytes_by_client_tier: HashMap<(ClientId, Tier), u64>,
}

/// The job's data-plane state, selected by [`Runtime`]: the resident
/// locked structures, or the shared-nothing partition-worker pool.
enum Core {
    Locked(LockedCore),
    Partitioned(PartitionedCore),
}

/// Per-client layer capacities under the `c/p` rule, honoring the
/// configuration's tier toggles.
fn job_layer_caps(cfg: &UniviStorConfig) -> Vec<(Tier, u64)> {
    let bb_total =
        cfg.cal.bb_nodes_for_job(cfg.geometry.nodes) as u64 * cfg.cal.bb_capacity_per_node;
    let all = layer_caps_with_node_local(
        cfg.cal.dram_cache_capacity_per_node,
        cfg.cal.node_local_capacity,
        cfg.geometry.procs_per_node,
        bb_total,
        cfg.geometry.total_procs(),
    );
    all.into_iter()
        .filter(|(tier, cap)| {
            let enabled = match tier {
                Tier::Dram => cfg.enable_dram,
                Tier::SharedBurstBuffer => cfg.enable_bb,
                _ => true,
            };
            // A layer too small to hold one log chunk (e.g. a
            // zero-capacity tier in the calibration) is dropped rather
            // than poisoning chain construction; the PFS layer's
            // unbounded capacity always stays.
            enabled && (*cap == u64::MAX || *cap >= cfg.chunk_size)
        })
        .collect()
}

/// The running UniviStor service for one job.
pub struct UniviStorJob {
    cfg: UniviStorConfig,
    /// path → file entry. Read-mostly: exclusive only in open/close.
    files: RwLock<HashMap<String, FileEntry>>,
    /// Chains, metadata, and heat shards — locked or partitioned.
    core: Core,
    /// Destination PFS; reads take the shared side.
    lustre: RwLock<Lustre>,
    connected: RwLock<HashSet<ClientId>>,
    next_fid: AtomicU64,
    /// Nodes whose volatile storage has been lost (failure injection).
    failed_nodes: RwLock<HashSet<usize>>,
    /// Whether `failed_nodes` is non-empty. Reads check this atomic and
    /// skip the failed-set lock entirely in the (overwhelmingly common)
    /// no-failure case.
    failed_any: AtomicBool,
    /// Sequential-scan detector feeding the read pipeline's readahead.
    read_state: ReadState,
    accounting: Mutex<Accounting>,
    state_file: StateFile,
    metrics: Arc<JobMetrics>,
    /// Deterministic fault schedule (`cfg.fault`); `None` — the default —
    /// means the data path pays only this `Option` check.
    injector: Option<Arc<FaultInjector>>,
    /// Background tiering engine state (drain ledgers, pass gates,
    /// lifetime counters). With tiering disabled the write path pays one
    /// relaxed atomic load against it.
    tiering: TieringState,
    /// Reader-reported corrupt copies awaiting online repair. Touched by
    /// the data path only on a verify *failure*.
    corrupt_queue: CorruptQueue,
    /// Background scrubber state (per-node cursors and pass gates).
    scrub: ScrubState,
}

/// Builder for one open call, created by [`UniviStorJob::open_file`].
///
/// Defaults: read-only, representing one rank, holding the workflow lock.
/// Finish with [`by`](OpenRequest::by):
///
/// ```ignore
/// let fid = job.open_file("/ckpt").write().representing(nprocs).by(root)?;
/// ```
#[must_use = "an OpenRequest does nothing until .by(client) is called"]
pub struct OpenRequest<'a> {
    job: &'a UniviStorJob,
    path: &'a str,
    mode: OpenMode,
    represents: usize,
    lock_holder: bool,
}

impl<'a> OpenRequest<'a> {
    /// Open read-only (`MPI_MODE_RDONLY`) — the default.
    pub fn read(mut self) -> Self {
        self.mode = OpenMode::Read;
        self
    }

    /// Open write-only, creating the file if needed.
    pub fn write(mut self) -> Self {
        self.mode = OpenMode::Write;
        self
    }

    /// Open read-write, creating the file if needed.
    pub fn read_write(mut self) -> Self {
        self.mode = OpenMode::ReadWrite;
        self
    }

    /// Set the mode from an [`OpenMode`] value (driver plumbing).
    pub fn mode(mut self, mode: OpenMode) -> Self {
        self.mode = mode;
        self
    }

    /// How many ranks this call stands for: the full communicator under
    /// COC, one (the default) otherwise.
    pub fn representing(mut self, ranks: usize) -> Self {
        self.represents = ranks;
        self
    }

    /// Whether this caller piggybacks workflow locking (the root rank).
    /// Defaults to true.
    pub fn lock_holder(mut self, holder: bool) -> Self {
        self.lock_holder = holder;
        self
    }

    /// Perform the open on behalf of `client`, returning the file id.
    pub fn by(self, client: ClientId) -> Result<u64> {
        self.job
            .open_impl(self.path, self.mode, self.represents, self.lock_holder)
            .map_err(|e| {
                Error::new("open", e)
                    .with_path(self.path)
                    .with_client(client)
            })
    }
}

impl UniviStorJob {
    /// Launch the service for a job with the given configuration.
    ///
    /// Panics when the configuration fails [`UniviStorConfig::validate`];
    /// use [`try_new`](Self::try_new) to receive the typed error instead.
    pub fn new(cfg: UniviStorConfig) -> Self {
        Self::with_metrics(cfg, Arc::new(JobMetrics::new()))
    }

    /// Launch the service after validating the configuration, rejecting
    /// out-of-range probabilities, inverted watermarks, a zero mailbox
    /// depth, or a zero-attempt retry policy with a typed error.
    pub fn try_new(cfg: UniviStorConfig) -> Result<Self> {
        cfg.validate().map_err(|e| Error::new("config", e))?;
        Ok(Self::with_metrics(cfg, Arc::new(JobMetrics::new())))
    }

    /// Launch the service reporting into an existing metrics panel.
    ///
    /// Note that [`Self::stats`] reads phase deltas off the panel's
    /// counters, so sharing one panel across concurrently *measured* jobs
    /// mixes their stats; share only for passive fleet-wide aggregation.
    pub fn with_metrics(cfg: UniviStorConfig, metrics: Arc<JobMetrics>) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("invalid UniviStorConfig: {e}");
        }
        let lustre = Lustre::new(cfg.cal.ost_count);
        let stats_base = metrics.scalars();
        let injector = cfg
            .fault
            .clone()
            .map(|schedule| Arc::new(FaultInjector::new(schedule)));
        if let Some(inj) = &injector {
            inj.install_counters(metrics.fault_counters());
        }
        let core = match cfg.runtime {
            Runtime::Locked => {
                let servers = cfg.geometry.total_servers();
                let mut metadata = MetadataService::new(
                    cfg.metadata_range_size,
                    servers.max(1),
                    cfg.geometry.nodes,
                );
                let heat_shards = metadata.servers().max(1);
                let mut chains = ChainSet::new();
                if let Some(inj) = &injector {
                    chains.set_injector(inj.clone());
                    metadata.set_injector(inj.clone());
                }
                Core::Locked(LockedCore {
                    chains,
                    metadata,
                    heat: (0..heat_shards)
                        .map(|_| RwLock::new(HashMap::new()))
                        .collect(),
                })
            }
            Runtime::Partitioned => Core::Partitioned(PartitionedCore::new(
                &cfg,
                &metrics,
                injector.clone(),
                job_layer_caps(&cfg),
            )),
        };
        UniviStorJob {
            cfg,
            files: RwLock::new(HashMap::new()),
            core,
            lustre: RwLock::new(lustre),
            connected: RwLock::new(HashSet::new()),
            next_fid: AtomicU64::new(1),
            failed_nodes: RwLock::new(HashSet::new()),
            failed_any: AtomicBool::new(false),
            read_state: ReadState::new(),
            accounting: Mutex::new(Accounting {
                stats_base,
                flush_receipts: Vec::new(),
                bytes_by_client_tier: HashMap::new(),
            }),
            state_file: StateFile::new(),
            metrics,
            injector,
            tiering: TieringState::default(),
            corrupt_queue: CorruptQueue::default(),
            scrub: ScrubState::default(),
        }
    }

    /// Fire any scheduled node failures whose operation threshold has
    /// passed. A no-op without an injector; called on the data-path entry
    /// points so a configured schedule advances with the workload.
    fn poll_faults(&self) {
        if let Some(inj) = &self.injector {
            for node in inj.due_node_failures() {
                self.fail_node(node);
            }
        }
    }

    /// The configuration.
    pub fn cfg(&self) -> &UniviStorConfig {
        &self.cfg
    }

    /// The workflow state file (shared with tests/diagnostics).
    pub fn state_file(&self) -> &StateFile {
        &self.state_file
    }

    /// Snapshot the job's full telemetry panel.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// The live metrics panel (for wiring schedulers or sharing with
    /// other jobs).
    pub fn metrics_handle(&self) -> &Arc<JobMetrics> {
        &self.metrics
    }

    /// Partition workers serving this job's data plane: the pool size
    /// under [`Runtime::Partitioned`], 0 under [`Runtime::Locked`].
    pub fn partition_workers(&self) -> usize {
        match &self.core {
            Core::Locked(_) => 0,
            Core::Partitioned(core) => core.workers(),
        }
    }

    /// Per-client layer capacities under the `c/p` rule.
    fn layer_caps(&self) -> Vec<(Tier, u64)> {
        job_layer_caps(&self.cfg)
    }

    /// Run `f` against the locked-core structures: directly under
    /// [`Runtime::Locked`]; under [`Runtime::Partitioned`] the workers are
    /// parked and their slices assembled for the duration (a *checkout* —
    /// see [`PartitionedCore::with_checked_out`]). Cold paths only
    /// (tiering passes, flush, repair, diagnostics).
    ///
    /// `f` must not call back into routed job operations (they would wait
    /// on the parked workers); operate on the provided core instead.
    fn with_core<R>(&self, f: impl FnOnce(&LockedCore) -> R) -> R {
        match &self.core {
            Core::Locked(core) => f(core),
            Core::Partitioned(core) => core.with_checked_out(f),
        }
    }

    /// Connection management: a client announced itself (`MPI_Init`).
    pub fn connect(&self, client: ClientId) {
        self.connected
            .write()
            .expect("connected poisoned")
            .insert(client);
    }

    /// A client departed (`MPI_Finalize`).
    pub fn disconnect(&self, client: ClientId) {
        self.connected
            .write()
            .expect("connected poisoned")
            .remove(&client);
    }

    /// Connected clients (servers terminate when this reaches zero after
    /// the last application exits). Shared lock — never contends with
    /// other readers or the data path.
    pub fn connected_count(&self) -> usize {
        self.connected.read().expect("connected poisoned").len()
    }

    /// Start building an open call for `path`. Defaults: read-only,
    /// representing one rank, holding the workflow lock.
    pub fn open_file<'a>(&'a self, path: &'a str) -> OpenRequest<'a> {
        OpenRequest {
            job: self,
            path,
            mode: OpenMode::Read,
            represents: 1,
            lock_holder: true,
        }
    }

    /// Open a file. `represents` is how many ranks this call stands for
    /// (the full communicator under COC, one otherwise); `lock_holder`
    /// marks the root that piggybacks workflow locking.
    #[deprecated(note = "use open_file(path).mode(..).representing(..).by(client)")]
    pub fn open(
        &self,
        path: &str,
        mode: OpenMode,
        _client: ClientId,
        represents: usize,
        lock_holder: bool,
    ) -> SimResult<u64> {
        self.open_impl(path, mode, represents, lock_holder)
    }

    fn open_impl(
        &self,
        path: &str,
        mode: OpenMode,
        represents: usize,
        lock_holder: bool,
    ) -> SimResult<u64> {
        // Workflow locking happens *before* touching job state and without
        // holding any lock — it may block.
        if lock_holder && self.cfg.features.workflow {
            if mode.writable() {
                self.state_file.acquire_write(path);
            } else {
                // A reader of a not-yet-existing file is the in-situ case:
                // wait until the producer has written it at least once.
                let exists = self
                    .files
                    .read()
                    .expect("file table poisoned")
                    .contains_key(path);
                if exists {
                    self.state_file.acquire_read(path);
                } else {
                    self.state_file.acquire_read_produced(path);
                }
            }
        }
        let mut files = self.files.write().expect("file table poisoned");
        // The metadata RPC happened even if the open is then rejected.
        self.metrics.record_open();
        if !files.contains_key(path) {
            if !mode.writable() {
                return Err(SimError::InvalidConfig(format!("no such file '{path}'")));
            }
            let fid = self.next_fid.fetch_add(1, Ordering::Relaxed);
            files.insert(
                path.to_string(),
                FileEntry {
                    fid,
                    size: AtomicU64::new(0),
                    open_count: 0,
                    written: AtomicBool::new(false),
                },
            );
        }
        let entry = files.get_mut(path).expect("just ensured");
        entry.open_count += represents;
        Ok(entry.fid)
    }

    fn ensure_chain(&self, client: ClientId) -> SimResult<()> {
        match &self.core {
            Core::Locked(core) => core.chains.ensure(client, || {
                ProcChain::new(self.layer_caps(), self.cfg.chunk_size)
            }),
            Core::Partitioned(core) => core.ensure_chain(client),
        }
    }

    /// Write `payload` at `offset` of `path` on behalf of `client`.
    /// The payload is split into segments (≤ `segment_size`, aligned to
    /// the logical segment grid) and placed by DHP.
    pub fn write(&self, client: ClientId, path: &str, offset: u64, payload: Payload) -> Result<()> {
        self.write_impl(client, path, offset, payload)
            .map_err(|e| Error::new("write", e).with_path(path).with_client(client))
    }

    fn write_impl(
        &self,
        client: ClientId,
        path: &str,
        offset: u64,
        payload: Payload,
    ) -> SimResult<()> {
        let len = payload.len();
        if len == 0 {
            return Ok(());
        }
        self.metrics.record_write_call();
        self.poll_faults();
        // Shared file-table lock: size/written are atomics, so concurrent
        // writers to different (or the same) file don't serialize here.
        let fid = {
            let files = self.files.read().expect("file table poisoned");
            let entry = files
                .get(path)
                .ok_or_else(|| SimError::InvalidConfig(format!("write to unopened '{path}'")))?;
            entry.size.fetch_max(offset + len, Ordering::Relaxed);
            entry.written.store(true, Ordering::Relaxed);
            entry.fid
        };
        let node = self.cfg.geometry.node_of_rank(client.rank as usize);
        match &self.core {
            Core::Locked(core) => {
                self.ensure_chain(client)?;
                match self.cfg.write_pipeline {
                    WritePipeline::Batched => {
                        self.write_batched(core, client, fid, node, offset, payload)?
                    }
                    WritePipeline::PerPiece => {
                        self.write_per_piece(core, client, fid, node, offset, payload)?
                    }
                }
            }
            // The routed pipeline is inherently batched; the pipeline
            // toggle selects locked-runtime reference flavors only.
            Core::Partitioned(core) => {
                self.write_routed(core, client, fid, node, offset, payload)?
            }
        }
        // The write superseded any drained-ahead copies it overlapped
        // (one relaxed load when no ledger exists — the disabled-daemon
        // fast path).
        self.tiering.invalidate(fid, offset, offset + len);
        let t = &self.cfg.tiering;
        if t.enabled && t.drain_cadence_ops > 0 && !self.tiering.paused.load(Ordering::Acquire) {
            let ops = self.tiering.write_ops.fetch_add(1, Ordering::Relaxed) + 1;
            if ops.is_multiple_of(t.drain_cadence_ops) {
                // Piggybacked pass on the writer's node; its errors never
                // fail the write that triggered it.
                let _ = self.tiering_pass(node, &PassOptions::full(&self.cfg));
            }
        }
        Ok(())
    }

    /// Split `[offset, offset + len)` on the logical segment grid, so
    /// overwrites displace whole records where possible. Returns
    /// `(logical offset, length)` per piece.
    fn plan_pieces(&self, offset: u64, len: u64) -> Vec<(u64, u64)> {
        let seg = self.cfg.segment_size;
        let end = offset + len;
        let mut pieces = Vec::with_capacity((len / seg) as usize + 2);
        let mut cur = offset;
        while cur < end {
            let piece_end = ((cur / seg + 1) * seg).min(end);
            pieces.push((cur, piece_end - cur));
            cur = piece_end;
        }
        pieces
    }

    /// Reference write path: one chain-lock, punch, KV commit, node-buffer
    /// sweep, and accounting acquisition per grid piece — the pre-batch
    /// implementation, selected by [`WritePipeline::PerPiece`] for
    /// differential tests and as the `write_batch` bench baseline.
    fn write_per_piece(
        &self,
        core: &LockedCore,
        client: ClientId,
        fid: u64,
        node: usize,
        offset: u64,
        payload: Payload,
    ) -> SimResult<()> {
        let mut locks = WriteLockCounts::default();
        let pieces = self.plan_pieces(offset, payload.len());
        for &(cur, piece_len) in &pieces {
            let piece = payload.slice(cur - offset, piece_len);
            let placed = with_retries(&self.cfg.retry, Some(&self.metrics), || {
                core.chains.append(client, piece.clone())
            })?;
            locks.chain += 1;

            // Resilience (future work of the paper): mirror segments that
            // landed on volatile layers into a buddy process's chain on
            // the next (healthy) node, so a node failure loses no data.
            let mut record = SegmentRecord::new(client, placed.va, piece_len);
            if self.cfg.integrity.checksums {
                record.checksum = Some(piece.content_checksum());
            }
            if self.cfg.replicate_volatile && placed.tier != Tier::Pfs {
                if let Some(buddy) = self.replica_buddy(client) {
                    self.ensure_chain(buddy)?;
                    // Best-effort: a full buddy chain degrades resilience
                    // for this segment, it does not fail the write. The
                    // buddy's chain lock is taken after releasing ours —
                    // never two chain locks at once.
                    locks.chain += 1;
                    let mirrored = with_retries(&self.cfg.retry, Some(&self.metrics), || {
                        core.chains.append(buddy, piece.clone())
                    });
                    if let Ok(rplaced) = mirrored {
                        record.replica = Some((buddy, rplaced.va));
                        self.metrics.record_replication(piece_len);
                    }
                }
            }

            let outcome = with_retries(&self.cfg.retry, Some(&self.metrics), || {
                core.metadata
                    .insert_batch(fid, cur, cur + piece_len, &[(cur, record)], node)
            })?;
            locks.kv_shard += outcome.locks.kv_shard_acquisitions;
            locks.node_buffer += outcome.locks.node_buffer_acquisitions;
            // Free the log space of overwritten data (possibly owned by
            // other clients' chains), including replica copies. Each
            // displaced span was claimed exactly once by the punch, so it
            // is released exactly once here.
            for d in outcome.displaced {
                core.chains.release(d.client, d.va, d.len);
                locks.chain += 1;
                if let Some((rc, rva)) = d.replica {
                    core.chains.release(rc, rva, d.len);
                    locks.chain += 1;
                }
            }
            self.metrics
                .record_segment(placed.tier, placed.layer, piece_len);
            *self
                .accounting
                .lock()
                .expect("accounting poisoned")
                .bytes_by_client_tier
                .entry((client, placed.tier))
                .or_insert(0) += piece_len;
            locks.accounting += 1;
        }
        self.metrics
            .record_write_batch(pieces.len() as u64, pieces.len() as u64, locks);
        Ok(())
    }

    /// Batched write pipeline (the default): plan every grid piece up
    /// front, place the run under one chain-lock acquisition
    /// ([`ChainSet::append_many`]), replicate volatile pieces with one
    /// buddy-chain acquisition, coalesce VA-contiguous same-layer pieces
    /// into single records (capped at the metadata range size), commit them
    /// with one punch over the full `[offset, end)` span plus
    /// partition-grouped puts ([`MetadataService::insert_batch`]), release
    /// displaced spans grouped by owning chain, and take the accounting
    /// mutex once for the whole call.
    fn write_batched(
        &self,
        core: &LockedCore,
        client: ClientId,
        fid: u64,
        node: usize,
        offset: u64,
        payload: Payload,
    ) -> SimResult<()> {
        let len = payload.len();
        let end = offset + len;
        let pieces = self.plan_pieces(offset, len);
        let payloads: Vec<Payload> = pieces
            .iter()
            .map(|&(cur, plen)| payload.slice(cur - offset, plen))
            .collect();
        let mut locks = WriteLockCounts::default();

        let placed = with_retries(&self.cfg.retry, Some(&self.metrics), || {
            core.chains.append_many(client, payloads.clone())
        })?;
        locks.chain += 1;

        // Resilience (future work of the paper): mirror the pieces that
        // landed on volatile layers into a healthy buddy's chain — the
        // whole run under one buddy chain-lock acquisition, taken after
        // ours is released (never two chain locks at once). Best-effort: a
        // failed buddy run degrades resilience, it does not fail the write.
        let mut replicas: Vec<Option<(ClientId, VirtualAddr, usize)>> = vec![None; pieces.len()];
        if self.cfg.replicate_volatile {
            if let Some(buddy) = self.replica_buddy(client) {
                let volatile: Vec<usize> = placed
                    .iter()
                    .enumerate()
                    .filter(|(_, p)| p.tier != Tier::Pfs)
                    .map(|(i, _)| i)
                    .collect();
                if !volatile.is_empty() {
                    self.ensure_chain(buddy)?;
                    locks.chain += 1;
                    let copies: Vec<Payload> =
                        volatile.iter().map(|&i| payloads[i].clone()).collect();
                    let mirrored = with_retries(&self.cfg.retry, Some(&self.metrics), || {
                        core.chains.append_many(buddy, copies.clone())
                    });
                    if let Ok(rplaced) = mirrored {
                        for (&i, rp) in volatile.iter().zip(&rplaced) {
                            replicas[i] = Some((buddy, rp.va, rp.layer));
                            self.metrics.record_replication(pieces[i].1);
                        }
                    }
                }
            }
        }

        // Coalesce: merge a piece into the previous record when both sit
        // on the same chain layer at adjacent VAs (and their replica spans
        // line up likewise, on one buddy layer), keeping every record
        // within the metadata range size so the left-widened overlap scans
        // stay correct. Layer equality matters because a VA seam between
        // two layers can also be address-adjacent.
        let range = self.cfg.metadata_range_size;
        let integrity = self.cfg.integrity.checksums;
        let mut records: Vec<(u64, SegmentRecord)> = Vec::with_capacity(pieces.len());
        let mut tail_layer = 0usize;
        let mut tail_replica_layer = 0usize;
        // Running checksum state of the record currently being
        // coalesced, so the write-commit stamp streams through the same
        // loop instead of re-walking the merged payloads afterwards.
        let mut tail_sum = univistor_sim::Checksum::new();
        for (i, p) in placed.iter().enumerate() {
            let (off, plen) = pieces[i];
            self.metrics.record_segment(p.tier, p.layer, plen);
            if let Some((_, last)) = records.last_mut() {
                let replica_ok = match (last.replica, replicas[i]) {
                    (None, None) => true,
                    (Some((lc, lva)), Some((rc, rva, rlayer))) => {
                        lc == rc && lva.0 + last.len == rva.0 && rlayer == tail_replica_layer
                    }
                    _ => false,
                };
                if p.layer == tail_layer
                    && last.va.0 + last.len == p.va.0
                    && replica_ok
                    && last.len + plen <= range
                {
                    last.len += plen;
                    if integrity {
                        payloads[i].absorb_to(&mut tail_sum);
                        last.checksum = Some(tail_sum.finalize());
                    }
                    continue;
                }
            }
            let mut record = SegmentRecord {
                client,
                va: p.va,
                len: plen,
                replica: replicas[i].map(|(c, va, _)| (c, va)),
                checksum: None,
            };
            if integrity {
                tail_sum = univistor_sim::Checksum::new();
                payloads[i].absorb_to(&mut tail_sum);
                record.checksum = Some(tail_sum.finalize());
            }
            records.push((off, record));
            tail_layer = p.layer;
            tail_replica_layer = replicas[i].map(|(_, _, l)| l).unwrap_or(0);
        }

        // Commit the run: one punch over the full span, partition-grouped
        // record puts, one producer node-buffer refresh.
        let outcome = with_retries(&self.cfg.retry, Some(&self.metrics), || {
            core.metadata.insert_batch(fid, offset, end, &records, node)
        })?;
        locks.kv_shard += outcome.locks.kv_shard_acquisitions;
        locks.node_buffer += outcome.locks.node_buffer_acquisitions;

        // Free the log space of overwritten data (possibly owned by other
        // clients' chains), including replica copies. Each displaced span
        // was claimed exactly once by the punch and is released exactly
        // once here, grouped so each owning chain's lock is taken once
        // (the stable sort keeps punch order within an owner).
        let mut spans: Vec<(ClientId, VirtualAddr, u64)> = Vec::new();
        for d in &outcome.displaced {
            spans.push((d.client, d.va, d.len));
            if let Some((rc, rva)) = d.replica {
                spans.push((rc, rva, d.len));
            }
        }
        spans.sort_by_key(|&(c, _, _)| c);
        locks.chain += core.chains.release_many(&spans);

        {
            let mut acct = self.accounting.lock().expect("accounting poisoned");
            locks.accounting += 1;
            for (i, p) in placed.iter().enumerate() {
                *acct
                    .bytes_by_client_tier
                    .entry((client, p.tier))
                    .or_insert(0) += pieces[i].1;
            }
        }
        self.metrics
            .record_write_batch(pieces.len() as u64, records.len() as u64, locks);
        Ok(())
    }

    /// Routed write pipeline ([`Runtime::Partitioned`]): the same plan,
    /// replication, coalescing, commit, and release steps as
    /// [`write_batched`](Self::write_batched), fused into at most one
    /// awaited round-trip per involved worker — the append (chain
    /// creation folded in), then one `WriteCommit` per span owner; the
    /// fragment puts, buffer sweep/refresh, and chain releases ride a
    /// fire-and-forget finish wave. When one worker owns the whole
    /// widened span and the producer chain (and replication is off), the
    /// write collapses to a single fused message. The call takes **zero**
    /// counted locks; byte ledgers accumulate in the appending worker
    /// (`account`), replacing the router-side accounting mutex.
    fn write_routed(
        &self,
        core: &PartitionedCore,
        client: ClientId,
        fid: u64,
        node: usize,
        offset: u64,
        payload: Payload,
    ) -> SimResult<()> {
        // The commit below may be several messages; hold off tiering
        // checkouts until the last one lands (see
        // `PartitionedCore::exclude_passes`).
        let _commit = core.exclude_passes();
        let len = payload.len();
        let end = offset + len;
        let pieces = self.plan_pieces(offset, len);
        let payloads: Vec<Payload> = pieces
            .iter()
            .map(|&(cur, plen)| payload.slice(cur - offset, plen))
            .collect();

        // Single-round-trip fast path: the owning worker runs the whole
        // commit (with the retry loops inside the handler — do not wrap
        // it in `with_retries`, a replayed message would double-append).
        if !self.cfg.replicate_volatile && core.fused_owner(client, node, offset, end).is_some() {
            let records =
                core.write_fused(client, fid, node, offset, end, payloads, pieces.clone())?;
            self.metrics.record_write_batch(
                pieces.len() as u64,
                records,
                WriteLockCounts::default(),
            );
            return Ok(());
        }

        let placed = with_retries(&self.cfg.retry, Some(&self.metrics), || {
            core.append(client, payloads.clone(), true, true)
        })?;

        // Replicate volatile pieces into a healthy buddy's chain —
        // best-effort, one message (chain creation fused in), after the
        // primary run completes (mirrors the locked pipeline's lock
        // ordering: never two chains at once).
        let mut replicas: Vec<Option<(ClientId, VirtualAddr, usize)>> = vec![None; pieces.len()];
        if self.cfg.replicate_volatile {
            if let Some(buddy) = self.replica_buddy(client) {
                let volatile: Vec<usize> = placed
                    .iter()
                    .enumerate()
                    .filter(|(_, p)| p.tier != Tier::Pfs)
                    .map(|(i, _)| i)
                    .collect();
                if !volatile.is_empty() {
                    let copies: Vec<Payload> =
                        volatile.iter().map(|&i| payloads[i].clone()).collect();
                    let mirrored = with_retries(&self.cfg.retry, Some(&self.metrics), || {
                        core.append(buddy, copies.clone(), false, true)
                    });
                    if let Ok(rplaced) = mirrored {
                        for (&i, rp) in volatile.iter().zip(&rplaced) {
                            replicas[i] = Some((buddy, rp.va, rp.layer));
                            self.metrics.record_replication(pieces[i].1);
                        }
                    }
                }
            }
        }

        // Coalesce exactly like the locked pipeline (see `write_batched`):
        // same-layer VA-adjacent pieces with lined-up replicas merge, each
        // record capped at the metadata range size.
        let range = self.cfg.metadata_range_size;
        let integrity = self.cfg.integrity.checksums;
        let mut records: Vec<(u64, SegmentRecord)> = Vec::with_capacity(pieces.len());
        let mut tail_layer = 0usize;
        let mut tail_replica_layer = 0usize;
        // Running checksum state of the record currently being
        // coalesced, so the write-commit stamp streams through the same
        // loop instead of re-walking the merged payloads afterwards.
        let mut tail_sum = univistor_sim::Checksum::new();
        for (i, p) in placed.iter().enumerate() {
            let (off, plen) = pieces[i];
            self.metrics.record_segment(p.tier, p.layer, plen);
            if let Some((_, last)) = records.last_mut() {
                let replica_ok = match (last.replica, replicas[i]) {
                    (None, None) => true,
                    (Some((lc, lva)), Some((rc, rva, rlayer))) => {
                        lc == rc && lva.0 + last.len == rva.0 && rlayer == tail_replica_layer
                    }
                    _ => false,
                };
                if p.layer == tail_layer
                    && last.va.0 + last.len == p.va.0
                    && replica_ok
                    && last.len + plen <= range
                {
                    last.len += plen;
                    if integrity {
                        payloads[i].absorb_to(&mut tail_sum);
                        last.checksum = Some(tail_sum.finalize());
                    }
                    continue;
                }
            }
            let mut record = SegmentRecord {
                client,
                va: p.va,
                len: plen,
                replica: replicas[i].map(|(c, va, _)| (c, va)),
                checksum: None,
            };
            if integrity {
                tail_sum = univistor_sim::Checksum::new();
                payloads[i].absorb_to(&mut tail_sum);
                record.checksum = Some(tail_sum.finalize());
            }
            records.push((off, record));
            tail_layer = p.layer;
            tail_replica_layer = replicas[i].map(|(_, _, l)| l).unwrap_or(0);
        }

        // Commit. `insert_batch` fails only by injection *before* touching
        // state, so the router draws that fault alone under the retry
        // loop; the commit messages themselves are infallible.
        with_retries(&self.cfg.retry, Some(&self.metrics), || {
            match &self.injector {
                Some(inj) => inj.inject("kv_insert", None),
                None => Ok(()),
            }
        })?;
        for (off, record) in &records {
            assert!(
                record.len <= range,
                "segment length {} exceeds metadata range size {range}",
                record.len
            );
            assert!(
                *off >= offset && off + record.len <= end,
                "record [{off}, {}) outside batch span [{offset}, {end})",
                off + record.len
            );
        }
        // First commit wave: one `WriteCommit` per span owner — the punch
        // and that worker's record puts in one message. The punch
        // precedes the puts inside each handler, so the CAS claims never
        // see the new records.
        let outcome = core.write_commit(fid, offset, end, &records);
        core.bump_generation(fid);

        // Second wave, fire-and-forget: fragment puts, the node-buffer
        // sweep (only on workers whose nodes track the fid), the producer
        // buffer refresh, and the releases of overwritten log space
        // (including replica copies); the stable sort keeps punch order
        // within an owner (the locked pipeline's release order). Mailbox
        // FIFO order sequences these before any later observer.
        let mut spans: Vec<(ClientId, VirtualAddr, u64)> = Vec::new();
        for (_, d) in &outcome.displaced {
            spans.push((d.client, d.va, d.len));
            if let Some((rc, rva)) = d.replica {
                spans.push((rc, rva, d.len));
            }
        }
        spans.sort_by_key(|&(c, _, _)| c);
        core.write_finish(fid, node, outcome, &records, spans);

        self.metrics.record_write_batch(
            pieces.len() as u64,
            records.len() as u64,
            WriteLockCounts::default(),
        );
        Ok(())
    }

    /// Read `[offset, offset + len)` of `path` on behalf of `client`.
    pub fn read(&self, client: ClientId, path: &str, offset: u64, len: u64) -> Result<Payload> {
        self.read_impl(client, path, offset, len)
            .map_err(|e| Error::new("read", e).with_path(path).with_client(client))
    }

    fn read_impl(&self, client: ClientId, path: &str, offset: u64, len: u64) -> SimResult<Payload> {
        self.poll_faults();
        let fid = self
            .files
            .read()
            .expect("file table poisoned")
            .get(path)
            .ok_or_else(|| SimError::InvalidConfig(format!("read of unopened '{path}'")))?
            .fid;
        // No failure injected (the overwhelmingly common case): skip the
        // failed-set lock and its clone entirely; otherwise pass the read
        // guard down — the plan resolves replica routes while holding it.
        let no_failures = HashSet::new();
        let guard;
        let failed: &HashSet<usize> = if self.failed_any.load(Ordering::Acquire) {
            guard = self.failed_nodes.read().expect("failed set poisoned");
            &guard
        } else {
            &no_failures
        };
        // Locked: shared locks only from here (metadata shards, node
        // buffers, read caches, producer chains) — concurrent readers
        // never block each other. Partitioned: messages to owning workers,
        // no counted locks at all. Reads mutate nothing, so an injected
        // transient fault anywhere in the plan is absorbed by replanning
        // the whole read.
        match &self.core {
            Core::Locked(core) => {
                let out = with_retries(&self.cfg.retry, Some(&self.metrics), || {
                    ReadService::new(&core.metadata, &core.chains, &self.cfg.geometry)
                        .location_aware(self.cfg.features.location_aware_reads)
                        .pipeline(self.cfg.read_pipeline)
                        .readahead(self.cfg.readahead_min_streak, self.cfg.readahead_window)
                        .with_state(&self.read_state)
                        .with_failed_nodes(failed)
                        .with_integrity(Some(&self.metrics), Some(&self.corrupt_queue))
                        .read(client, fid, offset, len)
                })?;
                self.metrics.record_read_trace(&out.trace);
                self.metrics.record_read_locks(out.locks);
                for key in out.touched {
                    Self::bump_heat(core, key);
                }
                Ok(out.payload)
            }
            Core::Partitioned(core) => {
                let (payload, trace, touched) =
                    with_retries(&self.cfg.retry, Some(&self.metrics), || {
                        self.read_routed(core, client, fid, offset, len, failed)
                    })?;
                self.metrics.record_read_trace(&trace);
                self.metrics.record_read_locks(ReadLockCounts::default());
                // Fire-and-forget to the owning heat workers — the read
                // never waits on access-pattern tracking.
                core.bump_heat(touched);
                Ok(payload)
            }
        }
    }

    /// Routed read pipeline ([`Runtime::Partitioned`]): the same four
    /// stages as [`ReadService`] — gather (node buffer, then the
    /// generation-validated read cache, then a distributed scan), plan
    /// ([`plan_fragments`]), fetch (one message per producer group, first
    /// appearance order), classify ([`classify_fragment`]) — with every
    /// shared-lock acquisition replaced by a message to the owning worker.
    /// Trace accounting and fault-draw order match the locked service
    /// field for field; the differential tests pin it.
    #[allow(clippy::type_complexity)]
    fn read_routed(
        &self,
        core: &PartitionedCore,
        client: ClientId,
        fid: u64,
        offset: u64,
        len: u64,
        failed: &HashSet<usize>,
    ) -> SimResult<(Payload, ReadTrace, Vec<SegKey>)> {
        // A checkout pass between our scan and fetch could migrate a
        // record and release the location we are about to read; exclude
        // passes for the whole attempt.
        let _view = core.exclude_passes();
        let mut trace = ReadTrace {
            requests: 1,
            ..ReadTrace::default()
        };
        if len == 0 {
            return Ok((Payload::empty(), trace, Vec::new()));
        }
        let my_node = self.cfg.geometry.node_of_rank(client.rank as usize);
        let end = offset + len;

        let mut records: Vec<(SegKey, SegmentRecord)> = Vec::new();
        if self.cfg.features.location_aware_reads {
            // Every location-aware read advances the scan detector (even
            // ones the node buffer fully covers), so a stream stays "hot"
            // when it transitions from local to remote data.
            let readahead_active = self.cfg.readahead_window > 0
                && self
                    .read_state
                    .advance(client, fid, offset, end, self.cfg.readahead_min_streak);
            // One fused `ReadPlan` round-trip to the node owner: buffer
            // lookup, and — only when the buffer leaves the request
            // uncovered — the `kv_lookup` fault draw (drawn before
            // touching further state, `lookup_range_cached` parity) plus
            // the generation-validated cache probe.
            let plan = core.read_plan(my_node, fid, offset, end)?;
            trace.local_md_hits += plan.local.len() as u64;
            records.extend(plan.local.iter().copied());
            if let Some((gen, probe)) = plan.remote {
                let fetch_hi = if readahead_active {
                    end.saturating_add(self.cfg.readahead_window)
                } else {
                    end
                };
                let remote_hits = match probe {
                    Some(hits) => {
                        trace.md_cache_hits += 1;
                        hits
                    }
                    None => {
                        let hits = core.scan(fid, offset, fetch_hi);
                        trace.md_rpcs += core.rpc_servers(offset, fetch_hi) as u64;
                        // The owning worker re-checks the generation
                        // before caching (a mutation may have landed while
                        // the scan was in flight).
                        core.cache_install(my_node, fid, offset, fetch_hi, gen, hits.clone());
                        trace.md_cache_misses += 1;
                        trace.readahead_bytes += fetch_hi - end;
                        hits
                    }
                };
                let mut seen: HashSet<SegKey> = records.iter().map(|(k, _)| *k).collect();
                for (k, r) in remote_hits {
                    // Readahead overshoot stays in the cache but out of
                    // this request's plan.
                    if k.offset >= end || k.offset + r.len <= offset {
                        continue;
                    }
                    if seen.insert(k) {
                        records.push((k, r));
                    }
                }
            }
        } else {
            // Naive path: a raw distributed lookup on the client's behalf.
            records = core.scan(fid, offset, end);
            trace.md_rpcs += core.rpc_servers(offset, end) as u64;
        }
        records.sort_by_key(|(k, _)| k.offset);

        let (fragments, touched) = plan_fragments(
            &self.cfg.geometry,
            failed,
            &records,
            offset,
            end,
            &mut trace,
        )?;
        let n = fragments.len();
        let mut groups: Vec<(ClientId, Vec<usize>)> = Vec::new();
        for (i, f) in fragments.iter().enumerate() {
            match groups.iter_mut().find(|(source, _)| *source == f.source) {
                Some((_, idxs)) => idxs.push(i),
                None => groups.push((f.source, vec![i])),
            }
        }
        let mut fetched: Vec<Option<(Payload, Tier)>> = (0..n).map(|_| None).collect();
        for (source, idxs) in &groups {
            let requests: Vec<(VirtualAddr, u64)> =
                idxs.iter().map(|&i| fetch_span(&fragments[i])).collect();
            for (&i, got) in idxs.iter().zip(core.fetch(*source, requests)?) {
                fetched[i] = Some(got);
            }
        }
        let mut parts = Vec::with_capacity(n);
        for (fragment, got) in fragments.iter().zip(fetched) {
            let (payload, tier) = got.expect("every fragment fetched");
            // Verify stamped records and reroute to the alternate copy on
            // a failure, exactly like the locked service; the refetch is
            // one more message to the alternate's owning worker.
            let (payload, tier) = finish_fragment(
                fragment,
                payload,
                tier,
                &mut |alt_client, alt_va, alt_len| {
                    let got = core.fetch(alt_client, vec![(alt_va, alt_len)])?;
                    Ok(got.into_iter().next().expect("one span requested"))
                },
                Some(&self.metrics),
                Some(&self.corrupt_queue),
            )?;
            classify_fragment(
                &self.cfg.geometry,
                self.cfg.features.location_aware_reads,
                fragment,
                tier,
                my_node,
                &mut trace,
            );
            parts.push(payload);
        }
        Ok((Payload::chain(parts), trace, touched))
    }

    /// Count one read of `key` against the locked core's heat shards
    /// (sharded like the metadata KV's range partitioning): shared shard
    /// lock + atomic increment in steady state; only a key's first touch
    /// takes the shard's write lock, to install the counter.
    fn bump_heat(core: &LockedCore, key: SegKey) {
        let shard = &core.heat[core.metadata.partition_of(key.offset) % core.heat.len()];
        {
            let shard = shard.read().expect("heat poisoned");
            if let Some(n) = shard.get(&key) {
                n.fetch_add(1, Ordering::Relaxed);
                return;
            }
        }
        shard
            .write()
            .expect("heat poisoned")
            .entry(key)
            .or_insert_with(|| AtomicU32::new(0))
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Run `f` while holding a *shared* view of `client`'s chain — the
    /// concurrency probe for tests: with the old whole-job mutex any job
    /// operation from inside `f` (on any thread) would deadlock; with the
    /// sharded layout reads of that same chain proceed in parallel.
    ///
    /// Under the locked runtime the view is a `try_read`-with-backoff
    /// acquisition ([`ChainSet::with`]): the caller never parks in the
    /// rwlock's reader queue, and while a writer is queued new views back
    /// off until it has gone through — so a stream of views cannot starve
    /// writers on the chain. `f` may run concurrent job operations, but
    /// must not *wait* on another thread acquiring a view of the same
    /// chain (with a writer queued, that view defers to the writer, which
    /// in turn waits for `f` — a cycle), and exclusive operations on
    /// `client`'s own chain from the calling thread deadlock by
    /// definition. Under the partitioned runtime chains have no locks at
    /// all — the view is a plain existence check.
    pub fn with_shared_read_view<R>(&self, client: ClientId, f: impl FnOnce() -> R) -> Result<R> {
        match &self.core {
            Core::Locked(core) => core
                .chains
                .with(client, |_| f())
                .map_err(|e| Error::new("read_view", e).with_client(client)),
            Core::Partitioned(core) => {
                core.chain_exists(client)
                    .map_err(|e| Error::new("read_view", e).with_client(client))?;
                Ok(f())
            }
        }
    }

    /// The replica buddy of `client`: the same-index process on the next
    /// node (wrapping), so primary and replica never share a node in
    /// multi-node jobs.
    fn buddy_of(&self, client: ClientId) -> ClientId {
        let total = self.cfg.geometry.total_procs() as u32;
        ClientId::new(
            client.app,
            (client.rank + self.cfg.geometry.procs_per_node as u32) % total,
        )
    }

    /// Where a replica of `client`'s data should go right now: the default
    /// buddy while no failure is injected (no lock beyond the atomic
    /// check), else the nearest buddy on a healthy node — a replica placed
    /// on an already-dead node protects nothing. `None` in single-node
    /// jobs or when every other node is down.
    fn replica_buddy(&self, client: ClientId) -> Option<ClientId> {
        if self.failed_any.load(Ordering::Acquire) {
            let failed = self.failed_nodes.read().expect("failed set poisoned");
            healthy_buddy(&self.cfg.geometry, &failed, client)
        } else {
            let buddy = self.buddy_of(client);
            (buddy != client).then_some(buddy)
        }
    }

    /// Failure injection: mark a node's volatile storage as lost. Reads
    /// of segments whose primary lived there are served from replicas.
    /// Idempotent; returns whether the node was newly failed.
    pub fn fail_node(&self, node: usize) -> bool {
        let fresh = self
            .failed_nodes
            .write()
            .expect("failed set poisoned")
            .insert(node);
        // After the set is populated, so a reader seeing the flag finds
        // the node in the set.
        self.failed_any.store(true, Ordering::Release);
        fresh
    }

    /// The inverse of [`fail_node`](Self::fail_node): a node came back
    /// (its volatile contents are still gone — run
    /// [`rebuild_degraded`](Self::rebuild_degraded) first to re-protect
    /// what lived there). Returns whether the node was in the failed set;
    /// when the set drains, the data path's failure flag clears and reads
    /// stop consulting the set entirely.
    pub fn restore_node(&self, node: usize) -> bool {
        let mut failed = self.failed_nodes.write().expect("failed set poisoned");
        let removed = failed.remove(&node);
        if failed.is_empty() {
            self.failed_any.store(false, Ordering::Release);
        }
        removed
    }

    /// Count the index records still referencing a failed node (as primary
    /// or replica) and publish the `univistor_degraded_segments` gauge.
    /// Cold path: scans every file's index.
    pub fn degraded_segments(&self) -> u64 {
        let failed = self
            .failed_nodes
            .read()
            .expect("failed set poisoned")
            .clone();
        let mut n = 0u64;
        if !failed.is_empty() {
            let node_failed =
                |c: ClientId| failed.contains(&self.cfg.geometry.node_of_rank(c.rank as usize));
            let spans = self.file_spans();
            n = self.with_core(|core| {
                spans
                    .iter()
                    .map(|&(fid, size)| {
                        core.metadata
                            .lookup_range(fid, 0, size)
                            .1
                            .iter()
                            .filter(|(_, r)| {
                                node_failed(r.client)
                                    || r.replica.is_some_and(|(rc, _)| node_failed(rc))
                            })
                            .count() as u64
                    })
                    .sum()
            });
        }
        self.metrics.set_degraded_segments(n);
        n
    }

    /// `(fid, size)` of every cached file — the repair scan's work list.
    fn file_spans(&self) -> Vec<(u64, u64)> {
        self.files
            .read()
            .expect("file table poisoned")
            .values()
            .map(|e| (e.fid, e.size.load(Ordering::Relaxed)))
            .collect()
    }

    /// Online repair: restore full redundancy for every record degraded by
    /// node failures, file by file (see [`crate::repair`]). Safe to run
    /// while clients keep writing and reading — a record overwritten
    /// mid-repair is left to the overwrite. Refreshes the
    /// `univistor_degraded_segments` gauge on the way out.
    pub fn rebuild_degraded(&self) -> Result<RepairReport> {
        self.rebuild_degraded_impl()
            .map_err(|e| Error::new("repair", e))
    }

    fn rebuild_degraded_impl(&self) -> SimResult<RepairReport> {
        let failed = self
            .failed_nodes
            .read()
            .expect("failed set poisoned")
            .clone();
        let mut total = RepairReport::default();
        if !failed.is_empty() {
            let spans = self.file_spans();
            // Inside a checkout, chains must be ensured on the assembled
            // core directly — routed `ensure_chain` would wait on the
            // parked workers.
            self.with_core(|core| {
                let ensure = |c: ClientId| {
                    core.chains
                        .ensure(c, || ProcChain::new(self.layer_caps(), self.cfg.chunk_size))
                };
                for (fid, size) in spans {
                    let report = repair_file(
                        &core.metadata,
                        &core.chains,
                        &self.cfg.geometry,
                        self.cfg.chunk_size,
                        &failed,
                        &self.cfg.retry,
                        Some(&self.metrics),
                        &ensure,
                        fid,
                        size,
                    )?;
                    total.absorb(report);
                }
                Ok::<(), SimError>(())
            })?;
        }
        self.degraded_segments();
        Ok(total)
    }

    /// Adaptive, proactive placement (future work of the paper): promote
    /// every segment read at least `min_reads` times from a slower layer
    /// into its producer's DRAM log, space permitting. Returns the number
    /// of segments promoted.
    #[deprecated(
        since = "0.7.0",
        note = "use `job.tiering()` — `run_pass()` applies the configured benefit/cost \
                promotion policy, `drain_now()`/`pause()`/`resume()`/`stats()` cover the rest"
    )]
    pub fn promote_hot(&self, min_reads: u32) -> Result<usize> {
        // Thin shim over the tiering engine's promotion phase: the old
        // `min_reads` threshold with no benefit floor, run on every node.
        let opts = PassOptions::promote_only(crate::config::PromotionPolicy {
            min_reads,
            min_benefit: 0.0,
        });
        let report = self.tiering_pass_all(&opts)?;
        Ok(report.promoted_segments as usize)
    }

    /// The tiering control surface: pause/resume the background engine,
    /// force a drain, run a full pass, read lifetime stats.
    pub fn tiering(&self) -> TieringHandle<'_> {
        TieringHandle::new(self)
    }

    /// The engine's shared state (ledgers, gates, counters).
    pub(crate) fn tiering_state(&self) -> &TieringState {
        &self.tiering
    }

    /// The integrity scrubber's control surface: run passes synchronously,
    /// inspect the repair backlog.
    pub fn scrub(&self) -> ScrubHandle<'_> {
        ScrubHandle::new(self)
    }

    /// Chaos drill (tests, soak harnesses): silently corrupt the stored
    /// primary copy of every record overlapping `[offset, offset + len)`
    /// of `path` — and the replica copies too when `include_replicas` —
    /// by registering targeted bit flips with the fault injector. The
    /// index entries are untouched: subsequent reads see wrong bytes at
    /// the storage layer, exactly like silent media corruption. Returns
    /// the number of copies corrupted. Requires a configured
    /// [`FaultConfig`](crate::fault::FaultConfig).
    pub fn corrupt_stored_range(
        &self,
        path: &str,
        offset: u64,
        len: u64,
        include_replicas: bool,
    ) -> Result<usize> {
        let inj = self.injector.as_ref().ok_or_else(|| {
            Error::new(
                "corrupt",
                SimError::InvalidConfig(
                    "targeted corruption requires a fault injector (cfg.fault)".into(),
                ),
            )
        })?;
        let fid = self
            .files
            .read()
            .expect("file table poisoned")
            .get(path)
            .ok_or_else(|| {
                Error::new(
                    "corrupt",
                    SimError::InvalidConfig(format!("corrupt of unopened '{path}'")),
                )
            })?
            .fid;
        let records = self.with_core(|core| {
            let (_, records) = core.metadata.lookup_range(fid, offset, offset + len);
            records
        });
        let mut corrupted = 0;
        for (_, rec) in records {
            inj.corrupt_span(rec.client, rec.va, rec.len);
            corrupted += 1;
            if include_replicas {
                if let Some((rc, rva)) = rec.replica {
                    inj.corrupt_span(rc, rva, rec.len);
                    corrupted += 1;
                }
            }
        }
        Ok(corrupted)
    }

    /// The reader-reported corrupt-copy queue.
    pub(crate) fn corrupt_queue(&self) -> &CorruptQueue {
        &self.corrupt_queue
    }

    /// The scrub engine's shared state (cursors, gates, counters).
    pub(crate) fn scrub_state(&self) -> &ScrubState {
        &self.scrub
    }

    /// Run one scrub pass for `node`: drain this node's share of the
    /// corrupt queue, then verify a budgeted slice of this node's records
    /// (see [`crate::scrub`]). Safe to run while clients keep writing and
    /// reading — repairs swap records with the same compare-and-swap
    /// discipline as online repair and lose gracefully to overwrites.
    pub(crate) fn scrub_pass(&self, node: usize) -> Result<ScrubReport> {
        let files = self.file_spans();
        let failed = self
            .failed_nodes
            .read()
            .expect("failed set poisoned")
            .clone();
        self.with_core(|core| {
            let ctx = ScrubCtx {
                cfg: &self.cfg,
                metadata: &core.metadata,
                chains: &core.chains,
                metrics: &self.metrics,
                state: &self.scrub,
                queue: &self.corrupt_queue,
                files,
                failed,
            };
            run_scrub_pass(&ctx, node)
        })
        .map_err(|e| Error::new("scrub", e))
    }

    /// Run one tiering pass for `node` with the given phase selection.
    pub(crate) fn tiering_pass(
        &self,
        node: usize,
        opts: &PassOptions,
    ) -> Result<TieringPassReport> {
        let files: Vec<(u64, String, u64, bool)> = {
            let files = self.files.read().expect("file table poisoned");
            files
                .iter()
                .filter(|(_, e)| e.written.load(Ordering::Relaxed))
                .map(|(path, e)| {
                    (
                        e.fid,
                        path.clone(),
                        e.size.load(Ordering::Relaxed),
                        e.open_count > 0,
                    )
                })
                .collect()
        };
        let failed = self
            .failed_nodes
            .read()
            .expect("failed set poisoned")
            .clone();
        let is_open = |fid: u64| {
            self.files
                .read()
                .expect("file table poisoned")
                .values()
                .any(|e| e.fid == fid && e.open_count > 0)
        };
        self.with_core(|core| {
            let ctx = PassCtx {
                cfg: &self.cfg,
                metadata: &core.metadata,
                chains: &core.chains,
                lustre: &self.lustre,
                heat: &core.heat,
                metrics: &self.metrics,
                state: &self.tiering,
                files,
                failed,
                is_open: &is_open,
            };
            run_pass(&ctx, node, opts)
        })
        .map_err(|e| Error::new("tiering", e))
    }

    /// Run one tiering pass on every node, aggregating the reports.
    pub(crate) fn tiering_pass_all(&self, opts: &PassOptions) -> Result<TieringPassReport> {
        let mut total = TieringPassReport {
            // `absorb` ANDs this flag: the aggregate counts as skipped
            // only when every node's pass was.
            skipped: true,
            ..TieringPassReport::default()
        };
        for node in 0..self.cfg.geometry.nodes {
            total.absorb(&self.tiering_pass(node, opts)?);
        }
        Ok(total)
    }

    /// Close a file on behalf of `represents` ranks. The last close of a
    /// written file triggers the server-side flush (when enabled) and
    /// releases the workflow lock.
    pub fn close(
        &self,
        path: &str,
        client: ClientId,
        mode: OpenMode,
        represents: usize,
        lock_holder: bool,
    ) -> Result<Option<FlushReceipt>> {
        self.close_impl(path, mode, represents, lock_holder)
            .map_err(|e| Error::new("close", e).with_path(path).with_client(client))
    }

    fn close_impl(
        &self,
        path: &str,
        mode: OpenMode,
        represents: usize,
        lock_holder: bool,
    ) -> SimResult<Option<FlushReceipt>> {
        let (should_flush, fid, size) = {
            let mut files = self.files.write().expect("file table poisoned");
            self.metrics.record_close();
            let entry = files
                .get_mut(path)
                .ok_or_else(|| SimError::InvalidConfig(format!("close of unopened '{path}'")))?;
            assert!(
                entry.open_count >= represents,
                "close of '{path}' beyond open count"
            );
            entry.open_count -= represents;
            let trigger = entry.open_count == 0
                && entry.written.load(Ordering::Relaxed)
                && mode.writable()
                && self.cfg.features.flush_on_close;
            (trigger, entry.fid, entry.size.load(Ordering::Relaxed))
        };

        // Release the workflow lock before flushing: readers may proceed
        // on the cached data while servers flush (§II-E).
        if lock_holder && self.cfg.features.workflow {
            if mode.writable() {
                self.state_file.release_write(path);
            } else {
                self.state_file.release_read(path);
            }
        }

        if !should_flush || size == 0 {
            return Ok(None);
        }
        if self.cfg.features.workflow {
            self.state_file.begin_flush(path);
        }
        self.metrics.flush_started();
        let failed = self
            .failed_nodes
            .read()
            .expect("failed set poisoned")
            .clone();
        // No job-wide lock during the flush under the locked runtime:
        // other clients keep writing and reading other files while this
        // one drains to Lustre. Under the partitioned runtime the
        // parallel engine routes its record scans and chain fetches to
        // the owning workers as ordinary messages (write-overlapped
        // checkout: no core checkout at all, a generation fence redoes
        // the pass if a writer raced); only the sequential reference
        // engine still checks the core out for the duration.
        let result = match (&self.core, self.cfg.flush_pipeline) {
            (Core::Partitioned(core), FlushPipeline::Parallel) => {
                // Serialize against the tiering daemon on this file (see
                // the locked arm below); the routed flush holds the gate
                // across every pass of the generation-fenced drain.
                let gate = self.tiering.fid_gate(fid);
                let _gate = gate.lock().expect("tiering gate poisoned");
                let ledger = self.tiering.take_ledger(fid);
                flush_with_source(
                    core,
                    &self.lustre,
                    &self.cfg,
                    &failed,
                    Some(&self.metrics),
                    self.injector.as_deref(),
                    fid,
                    size,
                    path,
                    ledger.as_ref(),
                )
            }
            _ => self.with_core(|core| {
                // Serialize against the tiering daemon on this file: a
                // pass that holds the gate finishes (or is skipped)
                // before the flush reads the chains, so no drain write
                // or migration release races the flush. Passes only
                // `try_lock` the gate, so this cannot deadlock (and
                // under the partitioned runtime the checkout serializer
                // already excludes concurrent passes).
                let gate = self.tiering.fid_gate(fid);
                let _gate = gate.lock().expect("tiering gate poisoned");
                // Consume the drain ledger: spans the daemon already
                // copied (and that are still current) turn the flush
                // into a catch-up.
                let ledger = self.tiering.take_ledger(fid);
                flush_file(
                    &core.metadata,
                    &core.chains,
                    &self.lustre,
                    &self.cfg,
                    &failed,
                    Some(&self.metrics),
                    self.injector.as_deref(),
                    fid,
                    size,
                    path,
                    ledger.as_ref(),
                )
            }),
        };
        self.metrics.flush_finished();
        let receipt = result?;
        self.tiering
            .catchup_skipped_bytes
            .fetch_add(receipt.drained_ahead_bytes, Ordering::Relaxed);
        if self.cfg.features.workflow {
            self.state_file.end_flush(path);
        }
        self.accounting
            .lock()
            .expect("accounting poisoned")
            .flush_receipts
            .push(receipt.clone());
        Ok(Some(receipt))
    }

    /// Logical size of a cached file. Shared file-table lock only.
    pub fn file_size(&self, path: &str) -> Result<u64> {
        self.files
            .read()
            .expect("file table poisoned")
            .get(path)
            .map(|e| e.size.load(Ordering::Relaxed))
            .ok_or_else(|| {
                Error::new(
                    "stat",
                    SimError::InvalidConfig(format!("no such file '{path}'")),
                )
                .with_path(path)
            })
    }

    /// Live cached bytes per tier across all clients. Under the locked
    /// runtime takes each chain's shared lock in turn — never the whole
    /// job; under the partitioned runtime checks the core out.
    pub fn tier_usage(&self) -> Vec<(Tier, u64)> {
        self.with_core(|core| core.chains.live_by_tier().into_iter().collect())
    }

    /// Total records in the distributed metadata index, across all files —
    /// the index size coalescing shrinks (reported by the `write_batch`
    /// bench).
    pub fn metadata_records(&self) -> usize {
        self.with_core(|core| core.metadata.len())
    }

    /// All index records of `path`, offset-sorted: each record's logical
    /// span, producer, VA, and replica. Diagnostics and verification only
    /// (shared locks, but scans the file's whole index).
    pub fn index_of(&self, path: &str) -> Result<Vec<(SegKey, SegmentRecord)>> {
        let (fid, size) = {
            let files = self.files.read().expect("file table poisoned");
            let entry = files.get(path).ok_or_else(|| {
                Error::new(
                    "index",
                    SimError::InvalidConfig(format!("no such file '{path}'")),
                )
                .with_path(path)
            })?;
            (entry.fid, entry.size.load(Ordering::Relaxed))
        };
        Ok(self.with_core(|core| core.metadata.lookup_range(fid, 0, size).1))
    }

    /// Verify a flushed file: compare the PFS copy byte-for-byte against
    /// the cached data (materializes the file — small/medium scale only).
    pub fn verify_flush(&self, client: ClientId, path: &str) -> Result<bool> {
        let size = self.file_size(path)?;
        let cached = self.read(client, path, 0, size)?;
        let on_pfs = self.lustre_read(path, 0, size)?;
        Ok(cached.content_eq(&on_pfs))
    }

    /// Read back a flushed file from the PFS (verification). Shared
    /// Lustre lock — concurrent with other PFS reads.
    pub fn lustre_read(&self, path: &str, offset: u64, len: u64) -> Result<Payload> {
        self.lustre
            .read()
            .expect("lustre poisoned")
            .read(path, offset, len, u64::MAX)
            .map_err(|e| {
                Error::new("pfs_read", e)
                    .with_path(path)
                    .with_tier(Tier::Pfs)
            })
    }

    /// Size of a flushed file on the PFS.
    pub fn lustre_file_size(&self, path: &str) -> Result<u64> {
        self.lustre
            .read()
            .expect("lustre poisoned")
            .file_size(path)
            .map_err(|e| {
                Error::new("pfs_stat", e)
                    .with_path(path)
                    .with_tier(Tier::Pfs)
            })
    }

    /// Per-OST cumulative byte loads on the PFS. Shared lock only.
    pub fn ost_loads(&self) -> Vec<u64> {
        self.lustre.read().expect("lustre poisoned").ost_loads()
    }

    /// Build the legacy flat view from the panel delta + structured state.
    fn stats_view(&self, acct: &Accounting) -> JobStats {
        let d = self.metrics.scalars().since(&acct.stats_base);
        JobStats {
            open_close_md_rpcs: d.md_open_close,
            opens: d.opens,
            closes: d.closes,
            segments: d.segments,
            bytes_by_tier: d.bytes_by_tier(),
            bytes_by_client_tier: acct.bytes_by_client_tier.clone(),
            write_md_rpcs: d.md_write,
            read_trace: ReadTrace {
                local_direct_bytes: d.read_local_hit,
                local_via_server_bytes: d.read_local_via_server,
                shared_direct_bytes: d.read_bb_direct,
                pfs_direct_bytes: d.read_pfs_direct,
                remote_bytes: d.read_remote_hop,
                md_rpcs: d.md_read,
                local_md_hits: d.md_local_hits,
                requests: d.reads,
                replica_bytes: d.read_replica,
                md_cache_hits: d.read_md_cache_hits,
                md_cache_misses: d.read_md_cache_misses,
                readahead_bytes: d.read_readahead_bytes,
            },
            flush_receipts: acct.flush_receipts.clone(),
            replicated_bytes: d.replicated_bytes,
            promotions: d.promotions,
        }
    }

    /// Snapshot of the counters (since construction or the last
    /// [`Self::take_stats`]). Under the partitioned runtime the
    /// per-(client, tier) byte map is merged from the workers' ledgers.
    pub fn stats(&self) -> JobStats {
        let acct = self.accounting.lock().expect("accounting poisoned");
        let mut out = self.stats_view(&acct);
        if let Core::Partitioned(core) = &self.core {
            out.bytes_by_client_tier = core.collect_bytes(false);
        }
        out
    }

    /// Take and reset the counters (phase boundaries in experiments).
    /// The underlying metrics panel is monotonic and unaffected; only the
    /// baseline this view diffs against advances (and, under the
    /// partitioned runtime, the workers' byte ledgers drain).
    pub fn take_stats(&self) -> JobStats {
        let mut acct = self.accounting.lock().expect("accounting poisoned");
        let mut out = self.stats_view(&acct);
        if let Core::Partitioned(core) = &self.core {
            out.bytes_by_client_tier = core.collect_bytes(true);
        }
        acct.stats_base = self.metrics.scalars();
        acct.flush_receipts = Vec::new();
        acct.bytes_by_client_tier = HashMap::new();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job() -> UniviStorJob {
        UniviStorJob::new(UniviStorConfig::test_small(2, 2))
    }

    fn client(rank: u32) -> ClientId {
        ClientId::new(0, rank)
    }

    #[test]
    fn open_write_read_close_roundtrip() {
        let j = job();
        let total_ranks = 4;
        j.open_file("/f")
            .write()
            .representing(total_ranks)
            .by(client(0))
            .unwrap();
        for rank in 0..4u32 {
            // Each rank writes 512 B at its block offset.
            j.write(
                client(rank),
                "/f",
                rank as u64 * 512,
                Payload::pattern(rank as u64, 512),
            )
            .unwrap();
        }
        assert_eq!(j.file_size("/f").unwrap(), 2048);
        // Cross-rank read before close.
        let got = j.read(client(0), "/f", 512, 512).unwrap();
        assert!(got.content_eq(&Payload::pattern(1, 512)));
        let receipt = j
            .close("/f", client(0), OpenMode::Write, total_ranks, true)
            .unwrap()
            .expect("last close flushes");
        assert_eq!(receipt.file_size, 2048);
        // And it is on Lustre, byte-exact.
        let pfs = j.lustre_read("/f", 512, 512).unwrap();
        assert!(pfs.content_eq(&Payload::pattern(1, 512)));
    }

    #[test]
    fn deprecated_positional_open_still_works() {
        let j = job();
        #[allow(deprecated)]
        let fid = j.open("/f", OpenMode::Write, client(0), 2, true).unwrap();
        // Same file through the builder: same fid, open counts add up.
        let fid2 = j
            .open_file("/f")
            .write()
            .representing(2)
            .by(client(1))
            .unwrap();
        assert_eq!(fid, fid2);
        j.write(client(0), "/f", 0, Payload::pattern(1, 64))
            .unwrap();
        assert!(j
            .close("/f", client(0), OpenMode::Write, 4, true)
            .unwrap()
            .is_some());
    }

    #[test]
    fn writes_spill_across_tiers() {
        let j = job();
        j.open_file("/big").write().by(client(0)).unwrap();
        // DRAM per proc: 1024/2 = 512 B (2 chunks of 256); write 2 KiB.
        j.write(client(0), "/big", 0, Payload::pattern(9, 2048))
            .unwrap();
        let usage = j.tier_usage();
        let dram = usage
            .iter()
            .find(|(t, _)| *t == Tier::Dram)
            .map(|(_, b)| *b)
            .unwrap_or(0);
        let bb = usage
            .iter()
            .find(|(t, _)| *t == Tier::SharedBurstBuffer)
            .map(|(_, b)| *b)
            .unwrap_or(0);
        assert_eq!(dram, 512, "usage: {usage:?}");
        assert!(bb > 0, "no spill: {usage:?}");
        // The panel saw the spills too.
        let snap = j.metrics();
        assert!(
            snap.counter_total("univistor_tier_spill_events_total") > 0,
            "spill events not recorded"
        );
        // Everything still reads back.
        let got = j.read(client(0), "/big", 0, 2048).unwrap();
        assert!(got.content_eq(&Payload::pattern(9, 2048)));
    }

    #[test]
    fn overwrite_releases_and_replaces() {
        let j = job();
        j.open_file("/f").write().by(client(0)).unwrap();
        j.write(client(0), "/f", 0, Payload::pattern(1, 512))
            .unwrap();
        let before = j.tier_usage().iter().map(|(_, b)| *b).sum::<u64>();
        j.write(client(0), "/f", 0, Payload::pattern(2, 512))
            .unwrap();
        let after = j.tier_usage().iter().map(|(_, b)| *b).sum::<u64>();
        assert_eq!(before, after, "overwrite must not grow live bytes");
        let got = j.read(client(0), "/f", 0, 512).unwrap();
        assert!(got.content_eq(&Payload::pattern(2, 512)));
    }

    #[test]
    fn flush_only_on_last_close() {
        let j = job();
        j.open_file("/f")
            .write()
            .representing(2)
            .by(client(0))
            .unwrap();
        j.write(client(0), "/f", 0, Payload::pattern(1, 128))
            .unwrap();
        let r = j.close("/f", client(0), OpenMode::Write, 1, false).unwrap();
        assert!(r.is_none(), "flush before last close");
        let r = j.close("/f", client(1), OpenMode::Write, 1, true).unwrap();
        assert!(r.is_some());
    }

    #[test]
    fn read_only_close_does_not_flush() {
        let j = job();
        j.open_file("/f").write().by(client(0)).unwrap();
        j.write(client(0), "/f", 0, Payload::pattern(1, 128))
            .unwrap();
        j.close("/f", client(0), OpenMode::Write, 1, true).unwrap();
        j.open_file("/f").read().by(client(1)).unwrap();
        let flushes_before = j.stats().flush_receipts.len();
        j.close("/f", client(1), OpenMode::Read, 1, true).unwrap();
        assert_eq!(j.stats().flush_receipts.len(), flushes_before);
    }

    #[test]
    fn flush_disabled_skips_persistence() {
        let mut cfg = UniviStorConfig::test_small(1, 1);
        cfg.features.flush_on_close = false;
        let j = UniviStorJob::new(cfg);
        j.open_file("/f").write().by(client(0)).unwrap();
        j.write(client(0), "/f", 0, Payload::pattern(1, 64))
            .unwrap();
        assert!(j
            .close("/f", client(0), OpenMode::Write, 1, true)
            .unwrap()
            .is_none());
        assert!(j.lustre_file_size("/f").is_err());
    }

    #[test]
    fn open_missing_for_read_fails_with_context() {
        let j = job();
        let err = j.open_file("/nope").read().by(client(0)).unwrap_err();
        assert_eq!(err.op(), "open");
        assert_eq!(err.path(), Some("/nope"));
        assert_eq!(err.client(), Some(client(0)));
        // The wrapper still round-trips to the substrate's variant.
        assert!(matches!(SimError::from(err), SimError::InvalidConfig(_)));
    }

    #[test]
    fn connection_management() {
        let j = job();
        j.connect(client(0));
        j.connect(client(1));
        assert_eq!(j.connected_count(), 2);
        j.disconnect(client(0));
        assert_eq!(j.connected_count(), 1);
        j.disconnect(client(1));
        assert_eq!(j.connected_count(), 0);
    }

    #[test]
    fn stats_accumulate_and_reset() {
        let j = job();
        j.open_file("/f").write().by(client(0)).unwrap();
        j.write(client(0), "/f", 0, Payload::pattern(1, 512))
            .unwrap();
        j.read(client(0), "/f", 0, 512).unwrap();
        let s = j.stats();
        assert!(s.segments >= 4); // 512 B in 128 B segments
        assert_eq!(s.read_trace.total_bytes(), 512);
        assert_eq!(s.opens, 1);
        j.take_stats();
        assert_eq!(j.stats().segments, 0);
        // The panel is monotonic: take_stats must not reset it.
        assert_eq!(j.metrics().counter_total("univistor_segments_total"), 4);
    }

    #[test]
    fn stats_view_agrees_with_metrics_panel() {
        let j = job();
        j.open_file("/f").write().by(client(0)).unwrap();
        j.write(client(0), "/f", 0, Payload::pattern(7, 640))
            .unwrap();
        j.read(client(0), "/f", 0, 640).unwrap();
        let s = j.stats();
        let snap = j.metrics();
        assert_eq!(s.segments, snap.counter_total("univistor_segments_total"));
        assert_eq!(
            s.bytes_by_tier.values().sum::<u64>(),
            snap.counter_total("univistor_cached_bytes_total")
        );
        assert_eq!(
            s.read_trace.total_bytes(),
            snap.counter_total("univistor_read_bytes_total")
        );
        assert_eq!(
            s.open_close_md_rpcs,
            snap.counter("univistor_md_rpcs_total", &[("op", "open_close")])
                .unwrap_or(0)
        );
    }

    #[test]
    fn verify_flush_detects_integrity() {
        let j = job();
        j.open_file("/v").write().by(client(0)).unwrap();
        j.write(client(0), "/v", 0, Payload::pattern(3, 700))
            .unwrap();
        j.close("/v", client(0), OpenMode::Write, 1, true)
            .unwrap()
            .expect("flush");
        assert!(j.verify_flush(client(0), "/v").unwrap());
        // Mutate the cache after the flush: verification now fails.
        j.open_file("/v").write().by(client(0)).unwrap();
        j.write(client(0), "/v", 0, Payload::pattern(4, 128))
            .unwrap();
        assert!(!j.verify_flush(client(0), "/v").unwrap());
    }

    #[test]
    fn flush_updates_panel_histograms() {
        let j = job();
        j.open_file("/h").write().by(client(0)).unwrap();
        j.write(client(0), "/h", 0, Payload::pattern(5, 1024))
            .unwrap();
        j.close("/h", client(0), OpenMode::Write, 1, true)
            .unwrap()
            .expect("flush");
        let snap = j.metrics();
        assert_eq!(snap.counter_total("univistor_flushes_total"), 1);
        let h = snap
            .histogram("univistor_flush_drained_bytes", &[])
            .expect("drained histogram");
        assert_eq!(h.count, 1);
        assert_eq!(h.sum, 1024.0);
        assert_eq!(
            snap.counter_total("univistor_flush_source_bytes_total"),
            1024
        );
        assert_eq!(snap.gauge("univistor_flush_in_progress", &[]), Some(0));
    }

    #[test]
    fn data_shared_between_coupled_apps() {
        // App 0 writes; app 1 (different ClientId.app) reads through the
        // same servers — Fig. 1's data-sharing scenario.
        let j = job();
        let producer = ClientId::new(0, 0);
        let consumer = ClientId::new(1, 0);
        j.open_file("/shared").write().by(producer).unwrap();
        j.write(producer, "/shared", 0, Payload::pattern(5, 256))
            .unwrap();
        let got = j.read(consumer, "/shared", 0, 256).unwrap();
        assert!(got.content_eq(&Payload::pattern(5, 256)));
    }

    #[test]
    fn shared_read_view_does_not_block_readers() {
        // With the old single job mutex, reading from inside the view (on
        // another thread) would deadlock; sharded locks make it concurrent.
        let j = job();
        j.open_file("/f").write().by(client(0)).unwrap();
        j.write(client(0), "/f", 0, Payload::pattern(1, 256))
            .unwrap();
        let got = j
            .with_shared_read_view(client(0), || {
                std::thread::scope(|s| {
                    let h = s.spawn(|| j.read(client(1), "/f", 0, 256).unwrap());
                    h.join().unwrap()
                })
            })
            .unwrap();
        assert!(got.content_eq(&Payload::pattern(1, 256)));
    }
}
