//! Adaptive data striping for fast data flush (§II-D, Eqs. 2–6).
//!
//! The flush splits the logical file into one contiguous range per
//! flushing server and chooses striping dynamically:
//!
//! * **Case 1 — fewer servers than OSTs**: each server's range is striped
//!   over a *distinct* set of `C_per_server = min(C_max_units/C_servers, α)`
//!   OSTs (Eq. 2), with stripe size
//!   `min(S_file / (C_servers · C_per_server), S_max)` (Eq. 3) and stripe
//!   count `min(S_file / S_stripe, C_max_units)` (Eq. 4). No two servers
//!   share an OST, so there is no cross-server synchronization.
//! * **Case 2 — at least as many servers as OSTs**: servers must overlap on
//!   OSTs. The naïve `S_stripe = S_file / C_servers` (Eq. 5) leaves
//!   `C_servers mod C_max_units` OSTs serving one extra server (the paper's
//!   example: 512 servers on 248 OSTs leave 16 straggler OSTs). Rounding
//!   the server count up to a multiple of the OST count —
//!   `C_dum_servers = ⌈C_servers/C_max_units⌉ · C_max_units` (Eq. 6) —
//!   yields a smaller stripe that amortizes load evenly.
//!   (The paper's prose says "724" for 512 servers and 248 OSTs; Eq. 6
//!   gives 744 — we implement the equation and note the typo.)
//!
//! The non-adaptive baseline stripes the whole file across *all* OSTs with
//! a fixed default stripe size, so every server synchronizes with every
//! OST and per-OST load depends on luck.

use univistor_pfs::{FileLayout, RangeLayout, StripeLayout};

/// Which regime Eq. 2–6 selected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StripeCase {
    /// Servers < OSTs: distinct OST sets per server.
    DistinctSets,
    /// Servers ≥ OSTs: balanced overlap via dummy-server rounding.
    BalancedOverlap,
}

/// A complete flush striping decision.
#[derive(Debug, Clone)]
pub struct StripePlan {
    /// Which case applied.
    pub case: StripeCase,
    /// Stripe size in bytes.
    pub stripe_size: u64,
    /// Per-server contiguous file ranges `[start, end)`.
    pub server_ranges: Vec<(u64, u64)>,
    /// File layout to create the destination file with.
    pub layout: FileLayout,
    /// Distinct OSTs each server contacts (synchronization cost driver).
    pub osts_per_server: usize,
}

impl StripePlan {
    /// Clip the span `[lo, hi)` along this plan's per-server ranges,
    /// yielding `(server, clip_lo, clip_hi)` for every range the span
    /// touches, in server order. The last range is treated as open-ended
    /// (extended to cover `hi`), so spans written after the file grew
    /// past the plan's size still get a server attribution — the same
    /// rule the close-time flush applies when it stretches a resumed
    /// plan's accounting ranges.
    pub fn clip_to_servers(
        &self,
        lo: u64,
        hi: u64,
    ) -> impl Iterator<Item = (usize, u64, u64)> + '_ {
        let last = self.server_ranges.len().saturating_sub(1);
        self.server_ranges
            .iter()
            .enumerate()
            .filter_map(move |(server, &(start, end))| {
                let end = if server == last { end.max(hi) } else { end };
                let clip_lo = lo.max(start);
                let clip_hi = hi.min(end);
                (clip_hi > clip_lo).then_some((server, clip_lo, clip_hi))
            })
    }
}

/// Split `[0, file_size)` into `servers` contiguous ranges (last absorbs
/// the remainder). Empty ranges occur when `file_size < servers`.
pub fn server_ranges(file_size: u64, servers: usize) -> Vec<(u64, u64)> {
    assert!(servers > 0);
    let base = file_size / servers as u64;
    let rem = file_size % servers as u64;
    let mut out = Vec::with_capacity(servers);
    let mut cur = 0u64;
    for i in 0..servers as u64 {
        let len = base + u64::from(i < rem);
        out.push((cur, cur + len));
        cur += len;
    }
    debug_assert_eq!(cur, file_size);
    out
}

/// Eq. 2: distinct OSTs per server in case 1.
pub fn c_per_server(osts: usize, servers: usize, alpha: usize) -> usize {
    (osts / servers).min(alpha).max(1)
}

/// Eq. 6: dummy server count in case 2.
pub fn c_dum_servers(servers: usize, osts: usize) -> usize {
    servers.div_ceil(osts) * osts
}

/// Compute the adaptive plan (Eqs. 2–6).
pub fn adaptive_plan(
    file_size: u64,
    servers: usize,
    osts: usize,
    alpha: usize,
    max_stripe: u64,
) -> StripePlan {
    assert!(servers > 0 && osts > 0 && alpha > 0 && max_stripe > 0);
    assert!(file_size > 0, "cannot plan an empty flush");
    let ranges = server_ranges(file_size, servers);

    if servers < osts {
        // Case 1: distinct OST sets.
        let per = c_per_server(osts, servers, alpha);
        // Eq. 3 (floor'd, at least one byte).
        let stripe_size = (file_size / (servers as u64 * per as u64)).clamp(1, max_stripe);
        let mut layout_ranges = Vec::with_capacity(servers);
        for (i, &(start, end)) in ranges.iter().enumerate() {
            let open_end = if i == servers - 1 { u64::MAX } else { end };
            layout_ranges.push(RangeLayout {
                start,
                end: open_end,
                layout: StripeLayout::new(stripe_size, per, (i * per) % osts),
            });
        }
        StripePlan {
            case: StripeCase::DistinctSets,
            stripe_size,
            server_ranges: ranges,
            layout: FileLayout::composite(layout_ranges),
            osts_per_server: per,
        }
    } else {
        // Case 2: balanced overlap.
        let dum = c_dum_servers(servers, osts);
        let stripe_size = (file_size / dum as u64).clamp(1, max_stripe);
        let layout = FileLayout::Uniform(StripeLayout::new(stripe_size, osts, 0));
        // A server's range spans ⌈range/stripe⌉ stripes, each on its own
        // OST (round robin), but never more than all OSTs.
        let range_len = ranges.first().map(|r| r.1 - r.0).unwrap_or(0);
        let osts_per_server = (range_len.div_ceil(stripe_size.max(1)) as usize).clamp(1, osts);
        StripePlan {
            case: StripeCase::BalancedOverlap,
            stripe_size,
            server_ranges: ranges,
            layout,
            osts_per_server,
        }
    }
}

/// The non-adaptive baseline: stripe everything across all OSTs with the
/// system default stripe size (what `lfs setstripe -c -1` gives you).
pub fn naive_plan(file_size: u64, servers: usize, osts: usize, default_stripe: u64) -> StripePlan {
    assert!(servers > 0 && osts > 0 && default_stripe > 0 && file_size > 0);
    let ranges = server_ranges(file_size, servers);
    let range_len = ranges.first().map(|r| r.1 - r.0).unwrap_or(0);
    let stripes_in_range = range_len.div_ceil(default_stripe.max(1)) as usize;
    StripePlan {
        case: StripeCase::BalancedOverlap,
        stripe_size: default_stripe,
        server_ranges: ranges,
        layout: FileLayout::Uniform(StripeLayout::new(default_stripe, osts, 0)),
        // With small default stripes every server touches ~all OSTs.
        osts_per_server: stripes_in_range.clamp(1, osts),
    }
}

/// Per-OST byte loads of a plan (for load-balance analysis): how many
/// bytes each OST receives when all server ranges are written.
pub fn ost_loads(plan: &StripePlan, osts: usize) -> Vec<u64> {
    let mut loads = vec![0u64; osts];
    for &(start, end) in &plan.server_ranges {
        if end > start {
            for (ost, bytes) in plan.layout.ost_loads(start, end - start) {
                loads[ost % osts] += bytes;
            }
        }
    }
    loads
}

#[cfg(test)]
mod tests {
    use super::*;

    const GB: u64 = 1 << 30;

    #[test]
    fn eq2_caps_at_alpha() {
        assert_eq!(c_per_server(248, 4, 8), 8); // 62 capped at α=8
        assert_eq!(c_per_server(248, 62, 8), 4);
        assert_eq!(c_per_server(248, 124, 8), 2);
        assert_eq!(c_per_server(248, 200, 8), 1);
    }

    #[test]
    fn eq6_paper_example_512_servers_248_osts() {
        // ⌈512/248⌉ × 248 = 744 (the paper's prose says 724 — a typo).
        assert_eq!(c_dum_servers(512, 248), 744);
        assert_eq!(c_dum_servers(248, 248), 248);
        assert_eq!(c_dum_servers(249, 248), 496);
    }

    #[test]
    fn case1_servers_get_disjoint_ost_sets() {
        let plan = adaptive_plan(64 * GB, 8, 248, 8, GB);
        assert_eq!(plan.case, StripeCase::DistinctSets);
        assert_eq!(plan.osts_per_server, 8);
        // Collect the OSTs each server range actually touches.
        let mut seen = std::collections::HashSet::new();
        for &(start, end) in &plan.server_ranges {
            let mut mine = std::collections::HashSet::new();
            for (ost, _) in plan.layout.ost_loads(start, end - start) {
                mine.insert(ost % 248);
            }
            assert!(mine.len() <= 8);
            for ost in mine {
                assert!(seen.insert(ost), "OST {ost} shared between servers");
            }
        }
    }

    #[test]
    fn case1_stripe_size_follows_eq3() {
        let plan = adaptive_plan(64 * GB, 8, 248, 8, GB);
        // Eq. 3: 64 GB / (8 × 8) = 1 GB, capped at S_max = 1 GB.
        assert_eq!(plan.stripe_size, GB);
        let plan = adaptive_plan(64 * GB, 16, 248, 8, GB);
        assert_eq!(plan.stripe_size, 64 * GB / (16 * 8));
    }

    #[test]
    fn case2_loads_are_balanced_where_naive_eq5_is_not() {
        let osts = 248;
        let servers = 512;
        let file = 512 * GB;
        let plan = adaptive_plan(file, servers, osts, 8, GB);
        assert_eq!(plan.case, StripeCase::BalancedOverlap);
        let loads = ost_loads(&plan, osts);
        let max = *loads.iter().max().unwrap() as f64;
        let min = *loads.iter().min().unwrap() as f64;
        assert!(
            max / min < 1.05,
            "adaptive case-2 imbalanced: {max} vs {min}"
        );

        // Naive Eq. 5 equivalent: stripe = file/servers over all OSTs in
        // round robin — 512 ranges on 248 OSTs → 16 OSTs carry 3 ranges.
        let eq5_stripe = file / servers as u64;
        let naive_layout = StripeLayout::new(eq5_stripe, osts, 0);
        let mut naive_loads = vec![0u64; osts];
        for (ost, b) in naive_layout.ost_loads(0, file) {
            naive_loads[ost % osts] += b;
        }
        let nmax = *naive_loads.iter().max().unwrap() as f64;
        let nmin = *naive_loads.iter().min().unwrap() as f64;
        assert!(nmax / nmin > 1.4, "Eq.5 stragglers missing: {nmax}/{nmin}");
    }

    #[test]
    fn naive_plan_contacts_many_osts() {
        let plan = naive_plan(512 * GB, 16, 248, 1 << 20);
        // 32 GB per server in 1 MiB stripes → touches all 248 OSTs.
        assert_eq!(plan.osts_per_server, 248);
        let adaptive = adaptive_plan(512 * GB, 16, 248, 8, GB);
        assert_eq!(adaptive.osts_per_server, 8);
    }

    #[test]
    fn server_ranges_cover_file_exactly() {
        for (size, servers) in [(100u64, 7usize), (1, 3), (0, 2), (1 << 40, 512)] {
            let ranges = server_ranges(size, servers);
            assert_eq!(ranges.len(), servers);
            let mut cur = 0;
            for (s, e) in ranges {
                assert_eq!(s, cur);
                cur = e;
            }
            assert_eq!(cur, size);
        }
    }

    #[test]
    fn clip_to_servers_splits_and_extends_last_range() {
        let plan = adaptive_plan(400, 4, 248, 8, GB);
        // Ranges: [0,100), [100,200), [200,300), [300,400).
        let clips: Vec<_> = plan.clip_to_servers(50, 250).collect();
        assert_eq!(clips, vec![(0, 50, 100), (1, 100, 200), (2, 200, 250)]);
        // A span inside one range yields a single clip.
        assert_eq!(
            plan.clip_to_servers(120, 160).collect::<Vec<_>>(),
            vec![(1, 120, 160)]
        );
        // Growth past the plan's size lands on the last server.
        assert_eq!(
            plan.clip_to_servers(380, 500).collect::<Vec<_>>(),
            vec![(3, 380, 500)]
        );
        // An empty span clips to nothing.
        assert_eq!(plan.clip_to_servers(100, 100).count(), 0);
    }

    #[test]
    fn tiny_files_still_plan() {
        let plan = adaptive_plan(10, 4, 248, 8, GB);
        assert!(plan.stripe_size >= 1);
        let plan = adaptive_plan(10, 300, 248, 8, GB);
        assert!(plan.stripe_size >= 1);
    }

    #[test]
    fn loads_sum_to_file_size() {
        for servers in [4usize, 100, 300, 512] {
            let file = 31 * GB + 12345;
            let plan = adaptive_plan(file, servers, 248, 8, GB);
            let total: u64 = ost_loads(&plan, 248).iter().sum();
            assert_eq!(total, file, "servers = {servers}");
        }
    }
}
