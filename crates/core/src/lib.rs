//! # univistor-core — the UniviStor system (CLUSTER 2018)
//!
//! UniviStor exposes the distributed and hierarchical storage of an HPC
//! job — per-node DRAM, node-local storage, the shared burst buffer, and a
//! disk-based parallel file system — as a single mount point behind the
//! MPI-IO interface. This crate is the paper's contribution, built on the
//! substrates in `univistor-sim` / `univistor-kv` / `univistor-pfs` /
//! `univistor-mpi`:
//!
//! | module | paper | what it implements |
//! |---|---|---|
//! | [`config`] | §II-A/F | feature toggles & job geometry |
//! | [`log`]    | §II-B1 | chunked log files with free-chunk stacks |
//! | [`placement`] | §II-B1 | Distributed & Hierarchical data Placement (DHP) |
//! | [`va`]     | §II-B2 | virtual addresses (Eq. 1) |
//! | [`metadata`] | §II-B3 | distributed metadata service over the range-partitioned KV |
//! | [`read`]   | §II-B4 | naive vs. location-aware read planning |
//! | [`sched`]  | §II-C  | interference-aware resource scheduling (Fig. 4) |
//! | [`striping`] | §II-D | adaptive data striping (Eqs. 2–6) |
//! | [`flush`]  | §II-D  | server-side asynchronous flush to Lustre |
//! | [`workflow`] | §II-E | lightweight workflow management (state file + lock piggybacking) |
//! | [`server`] | §II-A  | the UniviStor job: servers, tiers, connection management |
//! | [`driver`] | §II-F  | the ADIO driver (`ROMIO_FSTYPE_FORCE=UniviStor`), COC optimization |
//! | [`metrics`] | —     | the job telemetry panel over `univistor-obs` |
//! | [`fault`]  | —      | deterministic fault injection and retry with capped backoff |
//! | [`repair`] | —      | online re-replication of segments degraded by node loss |
//! | [`tiering`] | §7/Unimem | background watermark spill, continuous PFS drain, benefit/cost promotion |
//! | [`error`]  | —      | contextual error type wrapping the substrate's `SimError` |
//!
//! The data plane is functional: every byte written through the driver is
//! stored in a log chunk on some tier and reads back exactly, including
//! after spilling across tiers and flushing to the PFS. The timing plane
//! consumes the receipts these modules produce.

pub mod config;
pub mod driver;
pub mod error;
pub mod fault;
pub mod flush;
pub mod log;
pub mod metadata;
pub mod metrics;
pub mod placement;
pub mod read;
pub mod repair;
pub(crate) mod runtime;
pub mod sched;
pub mod scrub;
pub mod server;
pub mod striping;
pub mod tiering;
pub mod va;
pub mod workflow;

pub use config::{
    Features, FlushPipeline, IntegrityConfig, JobGeometry, PromotionPolicy, Runtime, ScrubConfig,
    TierWatermarks, TieringConfig, UniviStorConfig, UniviStorConfigBuilder,
};
pub use driver::UniviStorDriver;
pub use error::{Error, Result};
pub use fault::{FaultConfig, FaultInjector, RetryPolicy};
pub use flush::{FlushReceipt, FlushReport};
pub use metadata::{ClientId, SegKey, SegmentRecord};
pub use metrics::JobMetrics;
pub use repair::RepairReport;
pub use scrub::{CorruptReport, ScrubDaemon, ScrubHandle, ScrubReport};
pub use server::{JobStats, OpenRequest, UniviStorJob};
pub use tiering::{TieringDaemon, TieringHandle, TieringPassReport, TieringStats};
pub use univistor_obs::MetricsSnapshot;
pub use va::{Tier, TierMap, VirtualAddr};
