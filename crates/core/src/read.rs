//! Read service: naive vs. location-aware (§II-B4), with a batched
//! fetch pipeline.
//!
//! The baseline read path directs every request to the UniviStor server
//! co-located with the requester, which looks up the metadata and either
//! serves locally-held data (costing an extra memory copy through the
//! server) or forwards to the remote server holding the segment (at least
//! one network round trip).
//!
//! The location-aware service removes both overheads:
//! * the requester first consults its node's **shared metadata buffer**;
//!   locally produced segments are read straight out of node-local
//!   storage — no server hop, no extra copy;
//! * for the rest, the *client* retrieves the metadata records itself and
//!   fetches segments that live on globally visible layers (shared burst
//!   buffer, PFS) directly, without bouncing through the producers'
//!   servers.
//!
//! [`ReadService`] executes one request in four stages:
//! 1. **gather** the covering metadata records — local buffer first, then
//!    the distributed KV through the node's read record cache
//!    ([`MetadataService::lookup_range_cached`]), optionally widened by
//!    sequential readahead ([`ReadState`]);
//! 2. **plan** every clipped fragment up front, resolving replica
//!    rerouting around failed nodes in the plan;
//! 3. **fetch** the fragments — [`ReadPipeline::Batched`] groups them by
//!    producer chain and takes one shared chain-lock acquisition per
//!    group ([`ChainSet::read_at_many`]); [`ReadPipeline::PerRecord`]
//!    takes one per fragment (the reference implementation);
//! 4. **assemble** the payload in logical order and classify each
//!    fragment for the timing plane.
//!
//! Stages 1, 2, and 4 are shared between the pipelines, so the
//! [`ReadTrace`] accounting is identical by construction; only the
//! chain-lock acquisition count ([`ReadLockCounts`]) differs.
//!
//! The partitioned runtime's routed read mirrors the same four stages
//! with messages instead of locks: stage 1 opens with one fused
//! `ReadPlan` round-trip to the node owner (buffer lookup + `kv_lookup`
//! fault draw + generation-validated cache probe in a single handler
//! pass), falling back to a distributed scan wave only on a cache miss;
//! stages 2 and 4 reuse [`plan_fragments`] / [`classify_fragment`]
//! directly, so the trace stays runtime-invariant field for field.

use crate::config::{JobGeometry, ReadPipeline};
use crate::metadata::{ClientId, MetadataService, SegKey, SegmentRecord};
use crate::metrics::JobMetrics;
use crate::placement::ChainSet;
use crate::scrub::{CorruptQueue, CorruptReport};
use crate::va::{Tier, VirtualAddr};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::RwLock;
use univistor_sim::{Payload, SimError, SimResult};

/// Byte/RPC accounting of one (or many aggregated) read operations — the
/// input of the timing plane.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReadTrace {
    /// Bytes served from node-local storage with no server involvement
    /// (location-aware fast path).
    pub local_direct_bytes: u64,
    /// Bytes served from node-local storage *through* the co-located
    /// server (naive path: same data, plus a copy through the server).
    pub local_via_server_bytes: u64,
    /// Bytes fetched by the client directly from the shared burst buffer.
    pub shared_direct_bytes: u64,
    /// Bytes fetched by the client directly from its per-process PFS logs
    /// (globally visible through the PFS mount).
    pub pfs_direct_bytes: u64,
    /// Bytes that crossed the network via a remote server round trip.
    pub remote_bytes: u64,
    /// Metadata RPCs issued (distributed KV server visits).
    pub md_rpcs: u64,
    /// Metadata records found in the node's shared metadata buffer —
    /// lookups that never left the node (location-aware path only).
    pub local_md_hits: u64,
    /// Read requests planned.
    pub requests: u64,
    /// Bytes served from resilience replicas because the primary's node
    /// had failed.
    pub replica_bytes: u64,
    /// Distributed lookups answered by the node's read record cache —
    /// no metadata RPC issued (location-aware path only).
    pub md_cache_hits: u64,
    /// Distributed lookups that missed the cache and visited the KV
    /// servers.
    pub md_cache_misses: u64,
    /// Extra lookup-window bytes issued past the request's end by
    /// sequential readahead (pre-populating the read record cache).
    pub readahead_bytes: u64,
}

impl ReadTrace {
    /// Total bytes delivered.
    pub fn total_bytes(&self) -> u64 {
        self.local_direct_bytes
            + self.local_via_server_bytes
            + self.shared_direct_bytes
            + self.pfs_direct_bytes
            + self.remote_bytes
    }

    /// Accumulate another trace.
    pub fn absorb(&mut self, other: &ReadTrace) {
        self.local_direct_bytes += other.local_direct_bytes;
        self.local_via_server_bytes += other.local_via_server_bytes;
        self.shared_direct_bytes += other.shared_direct_bytes;
        self.pfs_direct_bytes += other.pfs_direct_bytes;
        self.remote_bytes += other.remote_bytes;
        self.md_rpcs += other.md_rpcs;
        self.local_md_hits += other.local_md_hits;
        self.requests += other.requests;
        self.replica_bytes += other.replica_bytes;
        self.md_cache_hits += other.md_cache_hits;
        self.md_cache_misses += other.md_cache_misses;
        self.readahead_bytes += other.readahead_bytes;
    }
}

/// Lock-acquisition accounting of one read call. Kept out of
/// [`ReadTrace`] because the two pipelines legitimately differ here while
/// their traces must stay identical; feeds
/// `univistor_read_lock_acquisitions_total`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReadLockCounts {
    /// Shared chain-lock acquisitions: one per fragment on the
    /// per-record path, one per producer group on the batched path.
    pub chain: u64,
}

/// Everything one read call produced: the assembled bytes, the timing
/// plane's accounting, the metadata keys touched (for access-pattern
/// tracking), and the lock costs.
#[derive(Debug)]
pub struct ReadOutcome {
    /// The assembled payload, exactly `len` bytes.
    pub payload: Payload,
    /// Byte/RPC accounting.
    pub trace: ReadTrace,
    /// Metadata keys of every record a fragment was read from.
    pub touched: Vec<SegKey>,
    /// Lock acquisitions spent fetching.
    pub locks: ReadLockCounts,
}

/// Per-`(client, fid)` forward-scan detector driving sequential
/// readahead. The cursors live behind a shared lock with atomic fields,
/// so the steady state of a scan costs no exclusive acquisition; only the
/// first read of a brand-new `(client, fid)` stream takes the write lock
/// to install its cursor (the `ensure_chain` pattern).
#[derive(Debug, Default)]
pub struct ReadState {
    cursors: RwLock<HashMap<(ClientId, u64), SeqCursor>>,
}

#[derive(Debug, Default)]
struct SeqCursor {
    last_end: AtomicU64,
    streak: AtomicU32,
}

impl SeqCursor {
    /// Record a read of `[offset, end)`; true when the forward streak has
    /// reached `min_streak`.
    fn advance(&self, offset: u64, end: u64, min_streak: u32) -> bool {
        if self.last_end.swap(end, Ordering::Relaxed) == offset {
            let streak = self
                .streak
                .fetch_add(1, Ordering::Relaxed)
                .saturating_add(1);
            streak >= min_streak
        } else {
            self.streak.store(0, Ordering::Relaxed);
            false
        }
    }
}

impl ReadState {
    /// An empty detector.
    pub fn new() -> Self {
        ReadState::default()
    }

    /// Record `client` reading `[offset, end)` of `fid`; true when the
    /// stream has sustained a forward scan for at least `min_streak`
    /// consecutive reads (each starting where the previous ended).
    pub fn advance(
        &self,
        client: ClientId,
        fid: u64,
        offset: u64,
        end: u64,
        min_streak: u32,
    ) -> bool {
        let key = (client, fid);
        {
            let cursors = self.cursors.read().expect("read state poisoned");
            if let Some(cursor) = cursors.get(&key) {
                return cursor.advance(offset, end, min_streak);
            }
        }
        self.cursors
            .write()
            .expect("read state poisoned")
            .entry(key)
            .or_default()
            .advance(offset, end, min_streak)
    }
}

/// One clipped fragment of the read plan: `len` bytes at `va` of
/// `source`'s chain (the replica owner when the primary's node failed —
/// rerouting is resolved at plan time, not per fetch). Carries enough of
/// its record for the integrity plane: the write-commit stamp, the
/// record-base span (the stamp digests the whole record, so only the
/// *whole* record can be verified — stamped fragments fetch the full span
/// and clip after the verify), and the alternate copy a verify failure
/// reroutes to.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Fragment {
    pub(crate) source: ClientId,
    pub(crate) va: VirtualAddr,
    pub(crate) len: u64,
    /// Write-commit stamp of the whole record this clip came from;
    /// `None` (unstamped overwrite fragment, or checksums disabled)
    /// keeps the legacy clip-only fetch.
    pub(crate) checksum: Option<u64>,
    /// Record-base VA on `source`'s chain and the record's full length —
    /// the span actually fetched when stamped.
    pub(crate) rec_va: VirtualAddr,
    pub(crate) rec_len: u64,
    /// The other copy of the record (record-base VA) when one exists on
    /// a healthy node: the reroute target after a verify failure.
    pub(crate) alternate: Option<(ClientId, VirtualAddr)>,
    /// Metadata key of the record (repair enqueue) and the clip's
    /// logical file offset (error context).
    pub(crate) key: SegKey,
    pub(crate) logical: u64,
}

/// The span to request for `f`: the full record when stamped (so the
/// fetch can be verified), the clip alone otherwise.
pub(crate) fn fetch_span(f: &Fragment) -> (VirtualAddr, u64) {
    match f.checksum {
        Some(_) => (f.rec_va, f.rec_len),
        None => (f.va, f.len),
    }
}

/// Finish one fetched fragment: verify stamped records against their
/// write-commit stamp, clip the requested window back out, and on a
/// verify failure reroute to the alternate copy — enqueueing every bad
/// copy for online repair. The caller never sees wrong bytes: the result
/// is a verified clip, or [`SimError::Integrity`] when no clean copy of
/// the record exists.
pub(crate) fn finish_fragment(
    f: &Fragment,
    payload: Payload,
    tier: Tier,
    refetch: &mut dyn FnMut(ClientId, VirtualAddr, u64) -> SimResult<(Payload, Tier)>,
    metrics: Option<&JobMetrics>,
    queue: Option<&CorruptQueue>,
) -> SimResult<(Payload, Tier)> {
    let Some(sum) = f.checksum else {
        return Ok((payload, tier));
    };
    let clip_off = f.va.0 - f.rec_va.0;
    let whole_record = clip_off == 0 && f.len == f.rec_len;
    if payload.content_checksum() == sum {
        // Steady path: skip the clip when the request spans the record.
        return Ok(if whole_record {
            (payload, tier)
        } else {
            (payload.slice(clip_off, f.len), tier)
        });
    }
    if let Some(m) = metrics {
        m.record_verify_failure("read");
    }
    if let Some(q) = queue {
        q.push(CorruptReport {
            key: f.key,
            client: f.source,
            va: f.rec_va,
            len: f.rec_len,
        });
    }
    if let Some((alt_client, alt_va)) = f.alternate {
        let (alt_payload, alt_tier) = refetch(alt_client, alt_va, f.rec_len)?;
        if alt_payload.content_checksum() == sum {
            return Ok(if whole_record {
                (alt_payload, alt_tier)
            } else {
                (alt_payload.slice(clip_off, f.len), alt_tier)
            });
        }
        if let Some(m) = metrics {
            m.record_verify_failure("read");
        }
        if let Some(q) = queue {
            q.push(CorruptReport {
                key: f.key,
                client: alt_client,
                va: alt_va,
                len: f.rec_len,
            });
        }
    }
    Err(SimError::Integrity {
        site: "read_fetch".into(),
        offset: f.logical,
        len: f.len,
    })
}

/// Stage 2, shared with the partitioned runtime's router: clip every
/// record to the requested window, verify there are no holes, and resolve
/// replica rerouting around failed nodes — the full fetch plan, before any
/// chain is touched.
pub(crate) fn plan_fragments(
    geometry: &JobGeometry,
    failed: &HashSet<usize>,
    records: &[(SegKey, SegmentRecord)],
    offset: u64,
    end: u64,
    trace: &mut ReadTrace,
) -> SimResult<(Vec<Fragment>, Vec<SegKey>)> {
    let mut fragments = Vec::with_capacity(records.len());
    let mut touched = Vec::with_capacity(records.len());
    let mut cursor = offset;
    for &(k, r) in records {
        let seg_end = k.offset + r.len;
        if seg_end <= cursor || k.offset >= end {
            continue;
        }
        if k.offset > cursor {
            return Err(SimError::Hole {
                offset: cursor,
                len: k.offset - cursor,
            });
        }
        let clip_lo = cursor.max(k.offset);
        let clip_hi = end.min(seg_end);
        let clip_len = clip_hi - clip_lo;
        touched.push(k);

        // Route around failed producers using the resilience replica.
        let primary_node = geometry.node_of_rank(r.client.rank as usize);
        let (source, rec_va, alternate) = if failed.contains(&primary_node) {
            let (rc, rva) = r.replica.ok_or_else(|| {
                SimError::InvalidConfig(format!(
                    "segment at offset {} lost: node {primary_node} failed and no replica",
                    k.offset
                ))
            })?;
            let replica_node = geometry.node_of_rank(rc.rank as usize);
            if failed.contains(&replica_node) {
                return Err(SimError::InvalidConfig(format!(
                    "segment at offset {} lost: primary and replica nodes both failed",
                    k.offset
                )));
            }
            trace.replica_bytes += clip_len;
            // The primary is on a failed node — a verify failure here has
            // nowhere healthy to reroute to.
            (rc, rva, None)
        } else {
            let alt = r
                .replica
                .filter(|&(rc, _)| !failed.contains(&geometry.node_of_rank(rc.rank as usize)));
            (r.client, r.va, alt)
        };
        fragments.push(Fragment {
            source,
            va: VirtualAddr(rec_va.0 + (clip_lo - k.offset)),
            len: clip_len,
            checksum: r.checksum,
            rec_va,
            rec_len: r.len,
            alternate,
            key: k,
            logical: clip_lo,
        });
        cursor = clip_hi;
    }
    if cursor < end {
        return Err(SimError::Hole {
            offset: cursor,
            len: end - cursor,
        });
    }
    Ok((fragments, touched))
}

/// Stage 4 helper, shared with the partitioned runtime's router: attribute
/// one fetched fragment to its timing-plane bucket.
pub(crate) fn classify_fragment(
    geometry: &JobGeometry,
    location_aware: bool,
    fragment: &Fragment,
    tier: Tier,
    my_node: usize,
    trace: &mut ReadTrace,
) {
    let producer_node = geometry.node_of_rank(fragment.source.rank as usize);
    if tier.node_local() {
        if producer_node == my_node {
            if location_aware {
                trace.local_direct_bytes += fragment.len;
            } else {
                trace.local_via_server_bytes += fragment.len;
            }
        } else {
            trace.remote_bytes += fragment.len;
        }
    } else if location_aware {
        if tier == Tier::Pfs {
            trace.pfs_direct_bytes += fragment.len;
        } else {
            trace.shared_direct_bytes += fragment.len;
        }
    } else {
        // Naive: even globally visible data bounces via servers.
        trace.remote_bytes += fragment.len;
    }
}

/// The read path's execution context: borrow the job's shared structures
/// once, then serve any number of requests through [`read`](Self::read).
///
/// The whole path takes only shared locks in steady state (metadata
/// shards, node buffers, read caches, producer chains); the exceptions
/// are first-touch installs (a new `(client, fid)` readahead cursor) and
/// the one exclusive node-cache acquisition a cache *miss* pays to
/// install its window — cache hits never write. Concurrent readers never
/// serialize on each other.
#[derive(Debug, Clone, Copy)]
pub struct ReadService<'a> {
    metadata: &'a MetadataService,
    chains: &'a ChainSet,
    geometry: &'a JobGeometry,
    location_aware: bool,
    pipeline: ReadPipeline,
    readahead_min_streak: u32,
    readahead_window: u64,
    state: Option<&'a ReadState>,
    failed_nodes: Option<&'a HashSet<usize>>,
    metrics: Option<&'a JobMetrics>,
    corrupt_queue: Option<&'a CorruptQueue>,
}

impl<'a> ReadService<'a> {
    /// A service over the job's metadata, chains, and geometry. Defaults:
    /// location-aware, batched pipeline, readahead off, no failed nodes.
    pub fn new(
        metadata: &'a MetadataService,
        chains: &'a ChainSet,
        geometry: &'a JobGeometry,
    ) -> Self {
        ReadService {
            metadata,
            chains,
            geometry,
            location_aware: true,
            pipeline: ReadPipeline::default(),
            readahead_min_streak: 2,
            readahead_window: 0,
            state: None,
            failed_nodes: None,
            metrics: None,
            corrupt_queue: None,
        }
    }

    /// Attach the integrity plane: verify failures are counted on
    /// `metrics` and bad copies enqueued on `queue` for online repair.
    /// Verification itself is driven by the per-record stamps
    /// ([`SegmentRecord::checksum`]); unstamped records skip it.
    pub(crate) fn with_integrity(
        mut self,
        metrics: Option<&'a JobMetrics>,
        queue: Option<&'a CorruptQueue>,
    ) -> Self {
        self.metrics = metrics;
        self.corrupt_queue = queue;
        self
    }

    /// Toggle the location-aware path (§II-B4). The naive path performs
    /// a raw distributed lookup per request — no node buffer, no cache,
    /// no readahead — exactly the baseline the figures ablate.
    pub fn location_aware(mut self, aware: bool) -> Self {
        self.location_aware = aware;
        self
    }

    /// Select the fetch pipeline.
    pub fn pipeline(mut self, pipeline: ReadPipeline) -> Self {
        self.pipeline = pipeline;
        self
    }

    /// Configure sequential readahead: widen distributed lookups by
    /// `window` bytes once a `(client, fid)` stream has read forward for
    /// `min_streak` consecutive requests. `window == 0` disables it.
    /// Requires [`with_state`](Self::with_state) to take effect.
    pub fn readahead(mut self, min_streak: u32, window: u64) -> Self {
        self.readahead_min_streak = min_streak;
        self.readahead_window = window;
        self
    }

    /// Attach the scan detector readahead persists its cursors in.
    pub fn with_state(mut self, state: &'a ReadState) -> Self {
        self.state = Some(state);
        self
    }

    /// Route around these failed nodes via resilience replicas.
    pub fn with_failed_nodes(mut self, failed: &'a HashSet<usize>) -> Self {
        self.failed_nodes = Some(failed);
        self
    }

    /// Plan and execute one read of `[offset, offset + len)` from `fid`
    /// on behalf of `client`.
    pub fn read(
        &self,
        client: ClientId,
        fid: u64,
        offset: u64,
        len: u64,
    ) -> SimResult<ReadOutcome> {
        let mut trace = ReadTrace {
            requests: 1,
            ..ReadTrace::default()
        };
        let mut locks = ReadLockCounts::default();
        if len == 0 {
            return Ok(ReadOutcome {
                payload: Payload::empty(),
                trace,
                touched: Vec::new(),
                locks,
            });
        }
        let my_node = self.geometry.node_of_rank(client.rank as usize);
        let end = offset + len;

        let records = self.gather_records(client, my_node, fid, offset, end, len, &mut trace)?;
        let (fragments, touched) = self.plan_fragments(&records, offset, end, &mut trace)?;
        let fetched = match self.pipeline {
            ReadPipeline::Batched => self.fetch_batched(&fragments, &mut locks)?,
            ReadPipeline::PerRecord => self.fetch_per_record(&fragments, &mut locks)?,
        };

        let mut parts = Vec::with_capacity(fetched.len());
        for (fragment, (payload, tier)) in fragments.iter().zip(fetched) {
            let (payload, tier) = finish_fragment(
                fragment,
                payload,
                tier,
                &mut |alt_client, alt_va, alt_len| {
                    locks.chain += 1;
                    self.chains.read_at(alt_client, alt_va, alt_len)
                },
                self.metrics,
                self.corrupt_queue,
            )?;
            self.classify(fragment, tier, my_node, &mut trace);
            parts.push(payload);
        }
        Ok(ReadOutcome {
            payload: Payload::chain(parts),
            trace,
            touched,
            locks,
        })
    }

    /// Stage 1: the records covering `[offset, end)`, offset-sorted and
    /// deduplicated. Shared between the pipelines, so every [`ReadTrace`]
    /// field it feeds (RPCs, buffer/cache hits, readahead) is
    /// pipeline-invariant. Fallible only under fault injection (the
    /// cached distributed lookup can fail transiently before touching any
    /// state).
    #[allow(clippy::too_many_arguments)]
    fn gather_records(
        &self,
        client: ClientId,
        my_node: usize,
        fid: u64,
        offset: u64,
        end: u64,
        len: u64,
        trace: &mut ReadTrace,
    ) -> SimResult<Vec<(SegKey, SegmentRecord)>> {
        let mut records: Vec<(SegKey, SegmentRecord)> = Vec::new();
        if self.location_aware {
            // Every location-aware read advances the scan detector (even
            // ones the node buffer fully covers), so a stream stays "hot"
            // when it transitions from local to remote data.
            let readahead_active = match (self.state, self.readahead_window) {
                (Some(state), window) if window > 0 => {
                    state.advance(client, fid, offset, end, self.readahead_min_streak)
                }
                _ => false,
            };
            // 1. Shared metadata buffer: free lookups for locally-produced
            //    data.
            let local_hits = self.metadata.lookup_local(my_node, fid, offset, end);
            trace.local_md_hits += local_hits.len() as u64;
            let covered: u64 = local_hits
                .iter()
                .map(|(k, r)| {
                    let lo = k.offset.max(offset);
                    let hi = (k.offset + r.len).min(end);
                    hi.saturating_sub(lo)
                })
                .sum();
            records.extend(local_hits.iter().copied());
            // 2. Distributed lookup only for the uncovered remainder,
            //    through the node's read record cache; a sequential scan
            //    widens the fetch window so following reads become hits.
            if covered < len {
                let fetch_hi = if readahead_active {
                    end.saturating_add(self.readahead_window)
                } else {
                    end
                };
                let (servers, remote_hits, hit) = self
                    .metadata
                    .lookup_range_cached(my_node, fid, offset, end, fetch_hi)?;
                trace.md_rpcs += servers.len() as u64;
                if hit {
                    trace.md_cache_hits += 1;
                } else {
                    trace.md_cache_misses += 1;
                    trace.readahead_bytes += fetch_hi - end;
                }
                let mut seen: HashSet<SegKey> = records.iter().map(|(k, _)| *k).collect();
                for (k, r) in remote_hits {
                    // Readahead overshoot stays in the cache but out of
                    // this request's plan.
                    if k.offset >= end || k.offset + r.len <= offset {
                        continue;
                    }
                    if seen.insert(k) {
                        records.push((k, r));
                    }
                }
            }
        } else {
            // Naive path: the co-located server performs a raw
            // distributed lookup on the client's behalf.
            let (servers, hits) = self.metadata.lookup_range(fid, offset, end);
            trace.md_rpcs += servers.len() as u64;
            records = hits;
        }
        records.sort_by_key(|(k, _)| k.offset);
        Ok(records)
    }

    /// Stage 2: delegate to the shared [`plan_fragments`] planner.
    fn plan_fragments(
        &self,
        records: &[(SegKey, SegmentRecord)],
        offset: u64,
        end: u64,
        trace: &mut ReadTrace,
    ) -> SimResult<(Vec<Fragment>, Vec<SegKey>)> {
        let no_failures = HashSet::new();
        let failed = self.failed_nodes.unwrap_or(&no_failures);
        plan_fragments(self.geometry, failed, records, offset, end, trace)
    }

    /// Stage 3, reference flavor: one shared chain-lock acquisition per
    /// fragment, in plan order.
    fn fetch_per_record(
        &self,
        fragments: &[Fragment],
        locks: &mut ReadLockCounts,
    ) -> SimResult<Vec<(Payload, Tier)>> {
        let mut fetched = Vec::with_capacity(fragments.len());
        for f in fragments {
            let (va, len) = fetch_span(f);
            fetched.push(self.chains.read_at(f.source, va, len)?);
            locks.chain += 1;
        }
        Ok(fetched)
    }

    /// Stage 3, batched flavor: group fragments by producer chain (first
    /// appearance order) and fetch each group under one shared
    /// acquisition. Payloads come back in plan order regardless.
    fn fetch_batched(
        &self,
        fragments: &[Fragment],
        locks: &mut ReadLockCounts,
    ) -> SimResult<Vec<(Payload, Tier)>> {
        // Group fragments by producer with a counting sort. Reads span a
        // handful of producers, so a linear probe over a small vec beats
        // hashing, and the flat slot buffer avoids per-group Vecs.
        let n = fragments.len();
        let mut groups: Vec<(ClientId, u32)> = Vec::new();
        let mut group_of: Vec<u32> = Vec::with_capacity(n);
        for f in fragments {
            let g = match groups.iter().position(|&(source, _)| source == f.source) {
                Some(g) => {
                    groups[g].1 += 1;
                    g
                }
                None => {
                    groups.push((f.source, 1));
                    groups.len() - 1
                }
            };
            group_of.push(g as u32);
        }
        if let [(source, _)] = groups[..] {
            // Single producer: the plan order is already the group order.
            let requests: Vec<(VirtualAddr, u64)> = fragments.iter().map(fetch_span).collect();
            let fetched = self.chains.read_at_many(source, &requests)?;
            locks.chain += 1;
            return Ok(fetched);
        }
        // Prefix sums give each group a slot range in the flat buffer.
        let mut next: Vec<u32> = Vec::with_capacity(groups.len());
        let mut acc = 0u32;
        for &(_, count) in &groups {
            next.push(acc);
            acc += count;
        }
        let mut slot: Vec<u32> = Vec::with_capacity(n);
        let mut requests: Vec<(VirtualAddr, u64)> = vec![(VirtualAddr(0), 0); n];
        for (f, &g) in fragments.iter().zip(&group_of) {
            let s = next[g as usize];
            next[g as usize] = s + 1;
            requests[s as usize] = fetch_span(f);
            slot.push(s);
        }
        // One shared chain-lock acquisition per producer group.
        let mut grouped: Vec<Option<(Payload, Tier)>> = Vec::with_capacity(n);
        let mut start = 0usize;
        for &(source, count) in &groups {
            let end = start + count as usize;
            grouped.extend(
                self.chains
                    .read_at_many(source, &requests[start..end])?
                    .into_iter()
                    .map(Some),
            );
            locks.chain += 1;
            start = end;
        }
        // Restore plan order.
        let mut fetched = Vec::with_capacity(n);
        for &s in &slot {
            fetched.push(grouped[s as usize].take().expect("each slot taken once"));
        }
        Ok(fetched)
    }

    /// Stage 4 helper: delegate to the shared [`classify_fragment`].
    fn classify(&self, fragment: &Fragment, tier: Tier, my_node: usize, trace: &mut ReadTrace) {
        classify_fragment(
            self.geometry,
            self.location_aware,
            fragment,
            tier,
            my_node,
            trace,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::PlacedSegment;

    /// Two nodes × two clients each; tiny tiers: 128 B DRAM log, 128 B BB
    /// log, then PFS. Chunk = 64 B, segments = 64 B.
    fn setup() -> (MetadataService, ChainSet, JobGeometry) {
        let geometry = JobGeometry {
            nodes: 2,
            procs_per_node: 2,
            servers_per_node: 1,
        };
        let metadata = MetadataService::new(256, 2, 2);
        let chains: ChainSet = (0..4u32)
            .map(|rank| {
                (
                    ClientId::new(0, rank),
                    crate::placement::ProcChain::new(
                        vec![
                            (Tier::Dram, 128),
                            (Tier::SharedBurstBuffer, 128),
                            (Tier::Pfs, u64::MAX),
                        ],
                        64,
                    )
                    .unwrap(),
                )
            })
            .collect();
        (metadata, chains, geometry)
    }

    /// Writer helper: client writes `n` 64-byte segments of a shared file,
    /// at logical offset = (rank * n + i) * 64.
    fn write_segments(
        metadata: &MetadataService,
        chains: &ChainSet,
        geometry: &JobGeometry,
        client: ClientId,
        n: u64,
    ) {
        for i in 0..n {
            let logical = (client.rank as u64 * n + i) * 64;
            let seed = logical; // deterministic content per offset
            let placed: PlacedSegment = chains.append(client, Payload::pattern(seed, 64)).unwrap();
            metadata.insert(
                SegKey {
                    fid: 1,
                    offset: logical,
                },
                SegmentRecord::new(client, placed.va, 64),
                geometry.node_of_rank(client.rank as usize),
            );
        }
    }

    fn svc<'a>(
        md: &'a MetadataService,
        chains: &'a ChainSet,
        geom: &'a JobGeometry,
        aware: bool,
    ) -> ReadService<'a> {
        ReadService::new(md, chains, geom).location_aware(aware)
    }

    #[test]
    fn full_file_reads_back_exactly() {
        let (md, chains, geom) = setup();
        for rank in 0..4 {
            write_segments(&md, &chains, &geom, ClientId::new(0, rank), 4);
        }
        for aware in [false, true] {
            for pipeline in [ReadPipeline::PerRecord, ReadPipeline::Batched] {
                let out = svc(&md, &chains, &geom, aware)
                    .pipeline(pipeline)
                    .read(ClientId::new(0, 0), 1, 0, 16 * 64)
                    .unwrap();
                assert_eq!(out.payload.len(), 16 * 64);
                assert_eq!(out.trace.total_bytes(), 16 * 64);
                for s in 0..16u64 {
                    let expect = Payload::pattern(s * 64, 64);
                    assert!(
                        out.payload.slice(s * 64, 64).content_eq(&expect),
                        "segment {s} corrupt (aware={aware}, {pipeline:?})"
                    );
                }
            }
        }
    }

    #[test]
    fn batched_groups_chain_locks_per_producer() {
        // One fresh world per pipeline so cache state matches too (within
        // one world, the first read would warm the cache for the second).
        let run = |pipeline: ReadPipeline| {
            let (md, chains, geom) = setup();
            for rank in 0..4 {
                write_segments(&md, &chains, &geom, ClientId::new(0, rank), 4);
            }
            svc(&md, &chains, &geom, true)
                .pipeline(pipeline)
                .read(ClientId::new(0, 0), 1, 0, 16 * 64)
                .unwrap()
        };
        let per_record = run(ReadPipeline::PerRecord);
        let batched = run(ReadPipeline::Batched);
        // 16 fragments from 4 producers: 16 acquisitions per-record,
        // 4 batched — the ≥2× the read_batch bench pins at scale.
        assert_eq!(per_record.locks.chain, 16);
        assert_eq!(batched.locks.chain, 4);
        // Everything else is pipeline-invariant.
        assert!(batched.payload.content_eq(&per_record.payload));
        assert_eq!(batched.trace, per_record.trace);
        assert_eq!(batched.touched, per_record.touched);
    }

    #[test]
    fn location_aware_serves_local_data_without_rpcs() {
        let (md, chains, geom) = setup();
        // Client 0 writes 2 segments, all on its DRAM log.
        write_segments(&md, &chains, &geom, ClientId::new(0, 0), 2);
        let out = svc(&md, &chains, &geom, true)
            .read(ClientId::new(0, 0), 1, 0, 128)
            .unwrap();
        assert_eq!(out.trace.local_direct_bytes, 128);
        assert_eq!(
            out.trace.md_rpcs, 0,
            "local metadata buffer should cover this"
        );
        assert_eq!(out.trace.remote_bytes, 0);
    }

    #[test]
    fn naive_pays_server_copy_for_local_data() {
        let (md, chains, geom) = setup();
        write_segments(&md, &chains, &geom, ClientId::new(0, 0), 2);
        let out = svc(&md, &chains, &geom, false)
            .read(ClientId::new(0, 0), 1, 0, 128)
            .unwrap();
        assert_eq!(out.trace.local_via_server_bytes, 128);
        assert!(out.trace.md_rpcs > 0);
        // The naive path never touches the read record cache.
        assert_eq!(out.trace.md_cache_hits + out.trace.md_cache_misses, 0);
    }

    #[test]
    fn same_node_neighbor_counts_as_local() {
        let (md, chains, geom) = setup();
        // Rank 1 (node 0) writes; rank 0 (node 0) reads.
        write_segments(&md, &chains, &geom, ClientId::new(0, 1), 2);
        let out = svc(&md, &chains, &geom, true)
            .read(ClientId::new(0, 0), 1, 2 * 64, 128)
            .unwrap();
        assert_eq!(out.trace.local_direct_bytes, 128);
    }

    #[test]
    fn cross_node_dram_data_is_remote() {
        let (md, chains, geom) = setup();
        // Rank 2 (node 1) writes; rank 0 (node 0) reads.
        write_segments(&md, &chains, &geom, ClientId::new(0, 2), 2);
        let out = svc(&md, &chains, &geom, true)
            .read(ClientId::new(0, 0), 1, 4 * 64, 128)
            .unwrap();
        assert_eq!(out.trace.remote_bytes, 128);
        assert!(out.trace.md_rpcs > 0);
        assert_eq!(out.trace.md_cache_misses, 1);
    }

    #[test]
    fn repeated_remote_lookup_hits_the_cache() {
        let (md, chains, geom) = setup();
        write_segments(&md, &chains, &geom, ClientId::new(0, 2), 2);
        let service = svc(&md, &chains, &geom, true);
        let first = service.read(ClientId::new(0, 0), 1, 4 * 64, 128).unwrap();
        assert_eq!(first.trace.md_cache_misses, 1);
        assert!(first.trace.md_rpcs > 0);
        let second = service.read(ClientId::new(0, 0), 1, 4 * 64, 128).unwrap();
        assert_eq!(second.trace.md_cache_hits, 1);
        assert_eq!(second.trace.md_rpcs, 0, "cache hit must not issue RPCs");
        assert!(second.payload.content_eq(&first.payload));
    }

    #[test]
    fn readahead_widens_then_serves_the_scan_from_cache() {
        let (md, chains, geom) = setup();
        // Rank 2 (node 1) produces 4 segments; rank 0 (node 0) scans them
        // sequentially in 64 B reads.
        write_segments(&md, &chains, &geom, ClientId::new(0, 2), 4);
        let state = ReadState::new();
        let service = svc(&md, &chains, &geom, true)
            .readahead(2, 256)
            .with_state(&state);
        let base = 8 * 64;
        let mut trace = ReadTrace::default();
        for i in 0..4u64 {
            let out = service
                .read(ClientId::new(0, 0), 1, base + i * 64, 64)
                .unwrap();
            assert!(out.payload.content_eq(&Payload::pattern(base + i * 64, 64)));
            trace.absorb(&out.trace);
        }
        // Reads 0 and 1 miss un-widened (the streak needs two contiguous
        // pairs), read 2 misses but fetches the widened window [640, 960),
        // and read 3 is served from the prefetched cache.
        assert_eq!(trace.md_cache_misses, 3);
        assert_eq!(trace.md_cache_hits, 1);
        assert_eq!(trace.readahead_bytes, 256);
    }

    #[test]
    fn bb_resident_data_fetched_directly_when_aware() {
        let (md, chains, geom) = setup();
        // Rank 2 writes 4 segments: 2 fill DRAM, 2 spill to BB.
        write_segments(&md, &chains, &geom, ClientId::new(0, 2), 4);
        // Rank 0 reads the spilled half.
        let aware = svc(&md, &chains, &geom, true)
            .read(ClientId::new(0, 0), 1, 10 * 64, 128)
            .unwrap();
        assert_eq!(aware.trace.shared_direct_bytes, 128, "{:?}", aware.trace);
        let naive = svc(&md, &chains, &geom, false)
            .read(ClientId::new(0, 0), 1, 10 * 64, 128)
            .unwrap();
        assert_eq!(naive.trace.remote_bytes, 128);
    }

    #[test]
    fn hole_in_file_is_an_error() {
        let (md, chains, geom) = setup();
        write_segments(&md, &chains, &geom, ClientId::new(0, 0), 1);
        for pipeline in [ReadPipeline::PerRecord, ReadPipeline::Batched] {
            let err = svc(&md, &chains, &geom, true)
                .pipeline(pipeline)
                .read(ClientId::new(0, 0), 1, 0, 256)
                .unwrap_err();
            assert!(matches!(err, SimError::Hole { .. }));
        }
    }

    #[test]
    fn unaligned_read_clips_segments() {
        let (md, chains, geom) = setup();
        write_segments(&md, &chains, &geom, ClientId::new(0, 0), 2);
        let out = svc(&md, &chains, &geom, true)
            .read(ClientId::new(0, 0), 1, 32, 64)
            .unwrap();
        assert_eq!(out.payload.len(), 64);
        assert_eq!(out.trace.total_bytes(), 64);
        // Bytes must match the two halves of adjacent segments.
        let expect = Payload::chain([
            Payload::pattern(0, 64).slice(32, 32),
            Payload::pattern(64, 64).slice(0, 32),
        ]);
        assert!(out.payload.content_eq(&expect));
    }

    #[test]
    fn zero_len_read_is_trivial() {
        let (md, chains, geom) = setup();
        let out = svc(&md, &chains, &geom, true)
            .read(ClientId::new(0, 0), 1, 0, 0)
            .unwrap();
        assert!(out.payload.is_empty());
        assert_eq!(out.trace.total_bytes(), 0);
        assert_eq!(out.locks.chain, 0);
    }

    #[test]
    fn scan_detector_requires_contiguous_forward_reads() {
        let state = ReadState::new();
        let c = ClientId::new(0, 0);
        assert!(!state.advance(c, 1, 64, 128, 2), "fresh stream");
        assert!(!state.advance(c, 1, 128, 192, 2), "streak 1 of 2");
        assert!(state.advance(c, 1, 192, 256, 2), "streak reached 2");
        // A backward jump resets the streak.
        assert!(!state.advance(c, 1, 0, 64, 2));
        assert!(!state.advance(c, 1, 64, 128, 2));
        // Streams are independent per (client, fid).
        assert!(!state.advance(ClientId::new(0, 1), 1, 128, 256, 2));
    }
}
