//! Read service: naive vs. location-aware (§II-B4).
//!
//! The baseline read path directs every request to the UniviStor server
//! co-located with the requester, which looks up the metadata and either
//! serves locally-held data (costing an extra memory copy through the
//! server) or forwards to the remote server holding the segment (at least
//! one network round trip).
//!
//! The location-aware service removes both overheads:
//! * the requester first consults its node's **shared metadata buffer**;
//!   locally produced segments are read straight out of node-local
//!   storage — no server hop, no extra copy;
//! * for the rest, the *client* retrieves the metadata records itself and
//!   fetches segments that live on globally visible layers (shared burst
//!   buffer, PFS) directly, without bouncing through the producers'
//!   servers.

use crate::config::JobGeometry;
use crate::metadata::{ClientId, MetadataService, SegKey, SegmentRecord};
use crate::placement::ChainSet;
use std::collections::HashSet;
use univistor_sim::{Payload, SimError, SimResult};

/// Byte/RPC accounting of one (or many aggregated) read operations — the
/// input of the timing plane.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReadTrace {
    /// Bytes served from node-local storage with no server involvement
    /// (location-aware fast path).
    pub local_direct_bytes: u64,
    /// Bytes served from node-local storage *through* the co-located
    /// server (naive path: same data, plus a copy through the server).
    pub local_via_server_bytes: u64,
    /// Bytes fetched by the client directly from the shared burst buffer.
    pub shared_direct_bytes: u64,
    /// Bytes fetched by the client directly from its per-process PFS logs
    /// (globally visible through the PFS mount).
    pub pfs_direct_bytes: u64,
    /// Bytes that crossed the network via a remote server round trip.
    pub remote_bytes: u64,
    /// Metadata RPCs issued (distributed KV server visits).
    pub md_rpcs: u64,
    /// Metadata records found in the node's shared metadata buffer —
    /// lookups that never left the node (location-aware path only).
    pub local_md_hits: u64,
    /// Read requests planned.
    pub requests: u64,
    /// Bytes served from resilience replicas because the primary's node
    /// had failed.
    pub replica_bytes: u64,
}

impl ReadTrace {
    /// Total bytes delivered.
    pub fn total_bytes(&self) -> u64 {
        self.local_direct_bytes
            + self.local_via_server_bytes
            + self.shared_direct_bytes
            + self.pfs_direct_bytes
            + self.remote_bytes
    }

    /// Accumulate another trace.
    pub fn absorb(&mut self, other: &ReadTrace) {
        self.local_direct_bytes += other.local_direct_bytes;
        self.local_via_server_bytes += other.local_via_server_bytes;
        self.shared_direct_bytes += other.shared_direct_bytes;
        self.pfs_direct_bytes += other.pfs_direct_bytes;
        self.remote_bytes += other.remote_bytes;
        self.md_rpcs += other.md_rpcs;
        self.local_md_hits += other.local_md_hits;
        self.requests += other.requests;
        self.replica_bytes += other.replica_bytes;
    }
}

/// Plan and execute one read of `[offset, offset + len)` from `fid` on
/// behalf of `client`. Returns the assembled payload, the trace, and the
/// metadata keys touched (for access-pattern tracking). When a producer's
/// node is in `failed_nodes`, the segment is served from its resilience
/// replica (if one exists).
///
/// The whole path takes only shared locks (metadata shards, node buffers,
/// producer chains), so concurrent readers never serialize on each other.
#[allow(clippy::too_many_arguments)]
pub fn read_segments(
    metadata: &MetadataService,
    chains: &ChainSet,
    geometry: &JobGeometry,
    location_aware: bool,
    failed_nodes: &HashSet<usize>,
    client: ClientId,
    fid: u64,
    offset: u64,
    len: u64,
) -> SimResult<(Payload, ReadTrace, Vec<SegKey>)> {
    let mut trace = ReadTrace {
        requests: 1,
        ..ReadTrace::default()
    };
    if len == 0 {
        return Ok((Payload::empty(), trace, Vec::new()));
    }
    let my_node = geometry.node_of_rank(client.rank as usize);
    let end = offset + len;

    // Records covering the request, with the location-aware local
    // shortcut where enabled.
    let mut records: Vec<(SegKey, SegmentRecord)> = Vec::new();
    if location_aware {
        // 1. Shared metadata buffer: free lookups for locally-produced data.
        let local_hits = metadata.lookup_local(my_node, fid, offset, end);
        trace.local_md_hits += local_hits.len() as u64;
        // 2. Distributed lookup only for the uncovered remainder.
        let covered: u64 = local_hits
            .iter()
            .map(|(k, r)| {
                let lo = k.offset.max(offset);
                let hi = (k.offset + r.len).min(end);
                hi.saturating_sub(lo)
            })
            .sum();
        records.extend(local_hits.iter().copied());
        if covered < len {
            let (servers, remote_hits) = metadata.lookup_range(fid, offset, end);
            trace.md_rpcs += servers.len() as u64;
            for (k, r) in remote_hits {
                if !records.iter().any(|(k2, _)| k2 == &k) {
                    records.push((k, r));
                }
            }
        }
    } else {
        // Naive path: the co-located server performs the distributed
        // lookup on the client's behalf.
        let (servers, hits) = metadata.lookup_range(fid, offset, end);
        trace.md_rpcs += servers.len() as u64;
        records = hits;
    }
    records.sort_by_key(|(k, _)| k.offset);

    // Gather payloads, clipping records to the requested window and
    // classifying each fragment for the timing plane.
    let mut parts: Vec<Payload> = Vec::new();
    let mut touched: Vec<SegKey> = Vec::new();
    let mut cursor = offset;
    for (k, r) in records {
        let seg_end = k.offset + r.len;
        if seg_end <= cursor || k.offset >= end {
            continue;
        }
        if k.offset > cursor {
            return Err(SimError::Hole {
                offset: cursor,
                len: k.offset - cursor,
            });
        }
        let clip_lo = cursor.max(k.offset);
        let clip_hi = end.min(seg_end);
        let clip_len = clip_hi - clip_lo;
        touched.push(k);

        // Route around failed producers using the resilience replica.
        let primary_node = geometry.node_of_rank(r.client.rank as usize);
        let (source, source_va) = if failed_nodes.contains(&primary_node) {
            let (rc, rva) = r.replica.ok_or_else(|| {
                SimError::InvalidConfig(format!(
                    "segment at offset {} lost: node {primary_node} failed and no replica",
                    k.offset
                ))
            })?;
            let replica_node = geometry.node_of_rank(rc.rank as usize);
            if failed_nodes.contains(&replica_node) {
                return Err(SimError::InvalidConfig(format!(
                    "segment at offset {} lost: primary and replica nodes both failed",
                    k.offset
                )));
            }
            trace.replica_bytes += clip_len;
            (rc, crate::va::VirtualAddr(rva.0 + (clip_lo - k.offset)))
        } else {
            (
                r.client,
                crate::va::VirtualAddr(r.va.0 + (clip_lo - k.offset)),
            )
        };
        let va = source_va;
        let (payload, tier) = chains.read_at(source, va, clip_len)?;
        parts.push(payload);

        let producer_node = geometry.node_of_rank(source.rank as usize);
        if tier.node_local() {
            if producer_node == my_node {
                if location_aware {
                    trace.local_direct_bytes += clip_len;
                } else {
                    trace.local_via_server_bytes += clip_len;
                }
            } else {
                trace.remote_bytes += clip_len;
            }
        } else if location_aware {
            if tier == crate::va::Tier::Pfs {
                trace.pfs_direct_bytes += clip_len;
            } else {
                trace.shared_direct_bytes += clip_len;
            }
        } else {
            // Naive: even globally visible data bounces via servers.
            trace.remote_bytes += clip_len;
        }
        cursor = clip_hi;
    }
    if cursor < end {
        return Err(SimError::Hole {
            offset: cursor,
            len: end - cursor,
        });
    }
    Ok((Payload::chain(parts), trace, touched))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::PlacedSegment;
    use crate::va::Tier;

    /// Two nodes × two clients each; tiny tiers: 128 B DRAM log, 128 B BB
    /// log, then PFS. Chunk = 64 B, segments = 64 B.
    fn setup() -> (MetadataService, ChainSet, JobGeometry) {
        let geometry = JobGeometry {
            nodes: 2,
            procs_per_node: 2,
            servers_per_node: 1,
        };
        let metadata = MetadataService::new(256, 2, 2);
        let chains: ChainSet = (0..4u32)
            .map(|rank| {
                (
                    ClientId::new(0, rank),
                    crate::placement::ProcChain::new(
                        vec![
                            (Tier::Dram, 128),
                            (Tier::SharedBurstBuffer, 128),
                            (Tier::Pfs, u64::MAX),
                        ],
                        64,
                    )
                    .unwrap(),
                )
            })
            .collect();
        (metadata, chains, geometry)
    }

    /// Writer helper: client writes `n` 64-byte segments of a shared file,
    /// at logical offset = (rank * n + i) * 64.
    fn write_segments(
        metadata: &MetadataService,
        chains: &ChainSet,
        geometry: &JobGeometry,
        client: ClientId,
        n: u64,
    ) {
        for i in 0..n {
            let logical = (client.rank as u64 * n + i) * 64;
            let seed = logical; // deterministic content per offset
            let placed: PlacedSegment = chains.append(client, Payload::pattern(seed, 64)).unwrap();
            metadata.insert(
                SegKey {
                    fid: 1,
                    offset: logical,
                },
                SegmentRecord::new(client, placed.va, 64),
                geometry.node_of_rank(client.rank as usize),
            );
        }
    }

    #[test]
    fn full_file_reads_back_exactly() {
        let (md, chains, geom) = setup();
        for rank in 0..4 {
            write_segments(&md, &chains, &geom, ClientId::new(0, rank), 4);
        }
        for aware in [false, true] {
            let (payload, trace, _) = read_segments(
                &md,
                &chains,
                &geom,
                aware,
                &HashSet::new(),
                ClientId::new(0, 0),
                1,
                0,
                16 * 64,
            )
            .unwrap();
            assert_eq!(payload.len(), 16 * 64);
            assert_eq!(trace.total_bytes(), 16 * 64);
            for s in 0..16u64 {
                let expect = Payload::pattern(s * 64, 64);
                assert!(
                    payload.slice(s * 64, 64).content_eq(&expect),
                    "segment {s} corrupt (aware={aware})"
                );
            }
        }
    }

    #[test]
    fn location_aware_serves_local_data_without_rpcs() {
        let (md, chains, geom) = setup();
        // Client 0 writes 2 segments, all on its DRAM log.
        write_segments(&md, &chains, &geom, ClientId::new(0, 0), 2);
        let (_, trace, _) = read_segments(
            &md,
            &chains,
            &geom,
            true,
            &HashSet::new(),
            ClientId::new(0, 0),
            1,
            0,
            128,
        )
        .unwrap();
        assert_eq!(trace.local_direct_bytes, 128);
        assert_eq!(trace.md_rpcs, 0, "local metadata buffer should cover this");
        assert_eq!(trace.remote_bytes, 0);
    }

    #[test]
    fn naive_pays_server_copy_for_local_data() {
        let (md, chains, geom) = setup();
        write_segments(&md, &chains, &geom, ClientId::new(0, 0), 2);
        let (_, trace, _) = read_segments(
            &md,
            &chains,
            &geom,
            false,
            &HashSet::new(),
            ClientId::new(0, 0),
            1,
            0,
            128,
        )
        .unwrap();
        assert_eq!(trace.local_via_server_bytes, 128);
        assert!(trace.md_rpcs > 0);
    }

    #[test]
    fn same_node_neighbor_counts_as_local() {
        let (md, chains, geom) = setup();
        // Rank 1 (node 0) writes; rank 0 (node 0) reads.
        write_segments(&md, &chains, &geom, ClientId::new(0, 1), 2);
        let (_, trace, _) = read_segments(
            &md,
            &chains,
            &geom,
            true,
            &HashSet::new(),
            ClientId::new(0, 0),
            1,
            2 * 64,
            128,
        )
        .unwrap();
        assert_eq!(trace.local_direct_bytes, 128);
    }

    #[test]
    fn cross_node_dram_data_is_remote() {
        let (md, chains, geom) = setup();
        // Rank 2 (node 1) writes; rank 0 (node 0) reads.
        write_segments(&md, &chains, &geom, ClientId::new(0, 2), 2);
        let (_, trace, _) = read_segments(
            &md,
            &chains,
            &geom,
            true,
            &HashSet::new(),
            ClientId::new(0, 0),
            1,
            4 * 64,
            128,
        )
        .unwrap();
        assert_eq!(trace.remote_bytes, 128);
        assert!(trace.md_rpcs > 0);
    }

    #[test]
    fn bb_resident_data_fetched_directly_when_aware() {
        let (md, chains, geom) = setup();
        // Rank 2 writes 4 segments: 2 fill DRAM, 2 spill to BB.
        write_segments(&md, &chains, &geom, ClientId::new(0, 2), 4);
        // Rank 0 reads the spilled half.
        let (_, aware, _) = read_segments(
            &md,
            &chains,
            &geom,
            true,
            &HashSet::new(),
            ClientId::new(0, 0),
            1,
            10 * 64,
            128,
        )
        .unwrap();
        assert_eq!(aware.shared_direct_bytes, 128, "{aware:?}");
        let (_, naive, _) = read_segments(
            &md,
            &chains,
            &geom,
            false,
            &HashSet::new(),
            ClientId::new(0, 0),
            1,
            10 * 64,
            128,
        )
        .unwrap();
        assert_eq!(naive.remote_bytes, 128);
    }

    #[test]
    fn hole_in_file_is_an_error() {
        let (md, chains, geom) = setup();
        write_segments(&md, &chains, &geom, ClientId::new(0, 0), 1);
        let err = read_segments(
            &md,
            &chains,
            &geom,
            true,
            &HashSet::new(),
            ClientId::new(0, 0),
            1,
            0,
            256,
        )
        .unwrap_err();
        assert!(matches!(err, SimError::Hole { .. }));
    }

    #[test]
    fn unaligned_read_clips_segments() {
        let (md, chains, geom) = setup();
        write_segments(&md, &chains, &geom, ClientId::new(0, 0), 2);
        let (payload, trace, _) = read_segments(
            &md,
            &chains,
            &geom,
            true,
            &HashSet::new(),
            ClientId::new(0, 0),
            1,
            32,
            64,
        )
        .unwrap();
        assert_eq!(payload.len(), 64);
        assert_eq!(trace.total_bytes(), 64);
        // Bytes must match the two halves of adjacent segments.
        let expect = Payload::chain([
            Payload::pattern(0, 64).slice(32, 32),
            Payload::pattern(64, 64).slice(0, 32),
        ]);
        assert!(payload.content_eq(&expect));
    }

    #[test]
    fn zero_len_read_is_trivial() {
        let (md, chains, geom) = setup();
        let (p, t, _) = read_segments(
            &md,
            &chains,
            &geom,
            true,
            &HashSet::new(),
            ClientId::new(0, 0),
            1,
            0,
            0,
        )
        .unwrap();
        assert!(p.is_empty());
        assert_eq!(t.total_bytes(), 0);
    }
}
