//! Job-wide telemetry: every hot path of the UniviStor runtime reports
//! into one [`JobMetrics`] instrument panel backed by the lock-cheap
//! `univistor-obs` registry.
//!
//! The panel caches one atomic handle per (family, label) pair at
//! construction time, so recording from the data path is a single
//! `fetch_add` — no lock, no allocation, no label lookup. Families:
//!
//! | family | kind | labels | fed by |
//! |---|---|---|---|
//! | `univistor_ops_total` | counter | `op` | open/close/write/read in `server` |
//! | `univistor_md_rpcs_total` | counter | `op` | open/close storms, per-segment puts, read lookups |
//! | `univistor_md_local_hits_total` | counter | — | shared-metadata-buffer hits in `read` |
//! | `univistor_segments_total` | counter | — | DHP appends |
//! | `univistor_cached_bytes_total` | counter | `tier` | bytes placed per layer (`placement`) |
//! | `univistor_tier_spill_events_total` | counter | `tier` | segments that spilled past layer 0 |
//! | `univistor_read_bytes_total` | counter | `path` | the read-service split (§II-B4) |
//! | `univistor_read_replica_bytes_total` | counter | — | bytes served from resilience replicas |
//! | `univistor_replicated_bytes_total` | counter | — | buddy-copy bytes written |
//! | `univistor_promotions_total` | counter | — | adaptive promotions to DRAM |
//! | `univistor_flushes_total` | counter | — | server-side flushes completed |
//! | `univistor_flush_in_progress` | gauge | — | flush pipeline depth |
//! | `univistor_flush_drained_bytes` | histogram | — | logical bytes moved per flush |
//! | `univistor_flush_server_bytes` | histogram | — | bytes one server wrote in one flush |
//! | `univistor_flush_source_bytes_total` | counter | `tier` | where flushed bytes were cached |
//! | `univistor_flush_lock_revocations_total` | counter | — | Lustre lock revocations while flushing |
//! | `univistor_flush_ost_writes_total` | counter | — | OST object writes issued (after stripe coalescing) |
//! | `univistor_flush_write_calls_total` | counter | — | Lustre object-write calls (one per coalesced run) |
//! | `univistor_flush_spans_total` | counter | — | clipped spans drained (engine-independent) |
//! | `univistor_flush_gather_round_trips_total` | counter | — | chain read round-trips gathering flush data |
//! | `univistor_flush_catchup_passes_total` | counter | — | generation-invalidated redo passes of the write-overlapped drain |
//! | `univistor_sched_decisions_total` | counter | `decision` | placement/migration choices (`sched`) |
//! | `univistor_write_pieces_total` | counter | — | segment-grid pieces planned by write calls |
//! | `univistor_write_records_total` | counter | — | metadata records committed by write calls (post-coalescing) |
//! | `univistor_write_lock_acquisitions_total` | counter | `lock` | lock round-trips spent by write calls |
//! | `univistor_read_lock_acquisitions_total` | counter | `lock` | shared chain-lock round-trips spent by read calls |
//! | `univistor_read_md_cache_hits_total` | counter | — | distributed lookups served by the node's read record cache |
//! | `univistor_read_md_cache_misses_total` | counter | — | distributed lookups that visited the KV servers |
//! | `univistor_read_readahead_bytes_total` | counter | — | lookup-window bytes issued past request ends by readahead |
//! | `univistor_faults_injected_total` | counter | `kind` | fault injector firings: `transient`, `node_loss`, `latency`, `corruption` |
//! | `univistor_retries_total` | counter | `op` | transient faults absorbed by a retry, by op kind (`append`/`read`/`kv`/`flush`/`other`) |
//! | `univistor_retry_exhausted_total` | counter | — | operations that failed after the full retry budget |
//! | `univistor_degraded_segments` | gauge | — | records whose primary or replica sits on a failed node |
//! | `univistor_flush_skipped_lost_bytes_total` | counter | — | bytes a degraded flush skipped because primary and replica were lost |
//! | `univistor_repaired_segments_total` | counter | `role` | records re-protected by `rebuild_degraded` (`primary`/`replica`) |
//! | `univistor_repaired_bytes_total` | counter | — | bytes copied onto healthy chains by repair |
//! | `univistor_tiering_passes_total` | counter | — | background tiering passes run (all nodes) |
//! | `univistor_tiering_spilled_segments_total` | counter | `tier` | segments spilled down a layer, by source tier |
//! | `univistor_tiering_spilled_bytes_total` | counter | `tier` | bytes spilled down a layer, by source tier |
//! | `univistor_tiering_drained_segments_total` | counter | — | cold segments copied ahead to the PFS by the drain phase |
//! | `univistor_tiering_drained_bytes_total` | counter | — | bytes copied ahead to the PFS by the drain phase |
//! | `univistor_tiering_promoted_segments_total` | counter | — | segments the benefit/cost policy promoted to the top layer |
//! | `univistor_tiering_promoted_bytes_total` | counter | — | bytes moved up by promotions |
//! | `univistor_tiering_heat_decays_total` | counter | — | periodic heat-counter halving ticks applied |
//! | `univistor_tiering_paused` | gauge | — | 1 while the tiering engine is paused |
//! | `univistor_tiering_catchup_skipped_bytes_total` | counter | — | bytes the close-time flush skipped because the daemon had drained them |
//! | `univistor_integrity_verify_failures_total` | counter | `site` | checksum verifies that failed, by verify point (`read`/`flush`/`tiering`/`repair`/`scrub`) |
//! | `univistor_scrub_segments_total` | counter | — | records the scrubber has verified |
//! | `univistor_scrub_corruptions_detected_total` | counter | — | corrupt copies the scrubber (or a read verify) detected |
//! | `univistor_scrub_repaired_total` | counter | — | corrupt copies repaired from a clean copy |
//! | `univistor_partition_mailbox_depth` | gauge | `partition` | requests queued in a partition worker's mailbox |
//! | `univistor_partition_wait_seconds` | histogram | `partition` | enqueue-to-dequeue latency of mailbox messages |
//! | `univistor_partition_messages_total` | counter | `partition` | messages dequeued by a partition worker |
//! | `univistor_partition_batched_ops_total` | counter | `partition` | logical batched ops carried by those messages |
//! | `univistor_partition_round_trips_total` | counter | — | awaited request/reply round-trips issued by the routing layer |
//! | `univistor_msgplane_reply_pool_hits_total` | counter | — | awaited requests served by a recycled reply slot |
//! | `univistor_msgplane_reply_pool_misses_total` | counter | — | awaited requests that had to allocate a fresh reply slot |
//!
//! [`UniviStorJob::metrics`](crate::server::UniviStorJob::metrics) snapshots
//! the whole panel as a [`MetricsSnapshot`]; the legacy
//! [`JobStats`](crate::server::JobStats) view is derived from these same
//! counters (see `server::stats`), so the two can never disagree.

use crate::flush::FlushReceipt;
use crate::read::{ReadLockCounts, ReadTrace};
use crate::va::Tier;
use univistor_obs::{exponential_buckets, Counter, Gauge, Histogram, MetricsSnapshot, Registry};

/// Stable label value for a tier (snake_case, unlike the display form).
pub fn tier_label(tier: Tier) -> &'static str {
    match tier {
        Tier::Dram => "dram",
        Tier::NodeLocal => "node_local",
        Tier::SharedBurstBuffer => "burst_buffer",
        Tier::Pfs => "pfs",
    }
}

/// All tiers, in chain order; indexes the per-tier handle arrays.
const TIERS: [Tier; 4] = [
    Tier::Dram,
    Tier::NodeLocal,
    Tier::SharedBurstBuffer,
    Tier::Pfs,
];

fn tier_index(tier: Tier) -> usize {
    match tier {
        Tier::Dram => 0,
        Tier::NodeLocal => 1,
        Tier::SharedBurstBuffer => 2,
        Tier::Pfs => 3,
    }
}

/// Op-kind labels of `univistor_retries_total`; indexes the cached
/// handle array via [`retry_index`].
const RETRY_OPS: [&str; 5] = ["append", "read", "kv", "flush", "other"];

/// Map a fault-injection site tag to its retry op-kind index.
fn retry_index(site: &str) -> usize {
    if site.starts_with("chain_append") {
        0
    } else if site.starts_with("chain_read") {
        1
    } else if site.starts_with("kv") {
        2
    } else if site.starts_with("flush") {
        3
    } else {
        4
    }
}

/// Verify-point labels of `univistor_integrity_verify_failures_total`.
const VERIFY_SITES: [&str; 5] = ["read", "flush", "tiering", "repair", "scrub"];

fn verify_site_index(site: &str) -> usize {
    VERIFY_SITES.iter().position(|&s| s == site).unwrap_or(0)
}

/// Cached scheduler counters handed to [`crate::sched`] so the placement
/// policy can report without holding a registry reference.
#[derive(Debug, Clone)]
pub struct SchedCounters {
    /// Processes placed on a free core.
    pub free_core: Counter,
    /// Processes stacked onto an occupied core (oversubscription).
    pub stacked: Counter,
    /// Client processes migrated off server cores for a flush.
    pub flush_migrations: Counter,
}

/// Cached fault-injection counters handed to
/// [`crate::fault::FaultInjector::install_counters`] so the injector can
/// report without holding a registry reference.
#[derive(Debug, Clone)]
pub struct FaultCounters {
    /// Transient I/O errors injected.
    pub transient: Counter,
    /// Permanent node losses triggered by the schedule.
    pub node_loss: Counter,
    /// Operations delayed by injected latency.
    pub latency: Counter,
    /// Silent corruptions registered against stored copies.
    pub corruption: Counter,
}

/// Cached mailbox instruments of one partition worker (the partitioned
/// runtime's per-partition telemetry).
#[derive(Debug, Clone)]
pub struct PartitionMetrics {
    /// Requests currently queued in the partition's mailbox.
    pub mailbox_depth: Gauge,
    /// Seconds between a request's enqueue and its dequeue by the worker.
    pub wait_seconds: Histogram,
    /// Messages the worker has dequeued.
    pub messages: Counter,
    /// Logical batched operations carried by those messages (an `Append`
    /// carrying 8 pieces counts 8).
    pub batched_ops: Counter,
}

/// Cached message-plane instruments of the partitioned runtime's routing
/// layer: round-trip accounting plus reply-slot pool recycling.
#[derive(Debug, Clone)]
pub struct MsgPlaneMetrics {
    /// Awaited request/reply round-trips issued by routers (fire-and-
    /// forget messages are not round-trips and are excluded).
    pub round_trips: Counter,
    /// Awaited requests whose reply slot came from the recycle pool.
    pub pool_hits: Counter,
    /// Awaited requests that allocated a fresh reply slot.
    pub pool_misses: Counter,
}

/// The job's instrument panel. One per [`crate::server::UniviStorJob`]
/// (shareable across jobs for fleet-wide aggregation).
#[derive(Debug)]
pub struct JobMetrics {
    registry: Registry,

    opens: Counter,
    closes: Counter,
    writes: Counter,
    reads: Counter,

    md_open_close: Counter,
    md_write: Counter,
    md_read: Counter,
    md_local_hits: Counter,

    segments: Counter,
    cached_bytes: [Counter; 4],
    spill_events: [Counter; 4],
    replicated_bytes: Counter,
    promotions: Counter,

    read_local_hit: Counter,
    read_local_via_server: Counter,
    read_bb_direct: Counter,
    read_pfs_direct: Counter,
    read_remote_hop: Counter,
    read_replica: Counter,

    flushes: Counter,
    flush_in_progress: Gauge,
    flush_drained: Histogram,
    flush_server_bytes: Histogram,
    flush_source: [Counter; 4],
    flush_revocations: Counter,
    flush_ost_writes: Counter,
    flush_write_calls: Counter,
    flush_spans: Counter,
    flush_gather_round_trips: Counter,
    flush_catchup_passes: Counter,

    write_pieces: Counter,
    write_records: Counter,
    /// Indexed as chain / kv_shard / node_buffer / accounting.
    write_locks: [Counter; 4],

    read_locks_chain: Counter,
    read_md_cache_hits: Counter,
    read_md_cache_misses: Counter,
    read_readahead_bytes: Counter,

    faults: FaultCounters,
    /// Indexed as append / read / kv / flush / other (see `retry_index`).
    retries: [Counter; 5],
    retry_exhausted: Counter,
    /// Indexed as read / flush / tiering / repair / scrub (see
    /// `verify_site_index`).
    verify_failures: [Counter; 5],
    scrub_segments: Counter,
    scrub_detected: Counter,
    scrub_repaired: Counter,
    degraded_segments: Gauge,
    flush_skipped_lost_bytes: Counter,
    repaired_primary: Counter,
    repaired_replica: Counter,
    repaired_bytes: Counter,

    tiering_passes: Counter,
    tiering_spilled_segments: [Counter; 4],
    tiering_spilled_bytes: [Counter; 4],
    tiering_drained_segments: Counter,
    tiering_drained_bytes: Counter,
    tiering_promoted_segments: Counter,
    tiering_promoted_bytes: Counter,
    tiering_heat_decays: Counter,
    tiering_paused: Gauge,
    tiering_catchup_bytes: Counter,

    sched: SchedCounters,
}

/// Lock-acquisition counts of one write call, by lock category. The write
/// pipelines fill one of these per call so the batch-vs-per-piece cost is
/// visible in `univistor_write_lock_acquisitions_total`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WriteLockCounts {
    /// Exclusive log-chain acquisitions (appends + displaced releases).
    pub chain: u64,
    /// KV shard acquisitions (scans, claims, fragment and record puts).
    pub kv_shard: u64,
    /// Shared-metadata-buffer acquisitions across nodes.
    pub node_buffer: u64,
    /// Accounting-mutex acquisitions.
    pub accounting: u64,
}

impl Default for JobMetrics {
    fn default() -> Self {
        Self::new()
    }
}

impl JobMetrics {
    /// A fresh panel with every family registered and children cached.
    pub fn new() -> Self {
        let registry = Registry::new();
        let ops = registry.counter_family("univistor_ops_total", "operations served by the job");
        let md = registry.counter_family("univistor_md_rpcs_total", "metadata-server RPCs issued");
        let md_local = registry.counter_family(
            "univistor_md_local_hits_total",
            "lookups satisfied by the node's shared metadata buffer (no RPC)",
        );
        let segments =
            registry.counter_family("univistor_segments_total", "segments appended by DHP");
        let cached = registry.counter_family(
            "univistor_cached_bytes_total",
            "bytes placed on each storage tier by DHP",
        );
        let spills = registry.counter_family(
            "univistor_tier_spill_events_total",
            "segments that spilled past the fastest layer, by destination tier",
        );
        let read_bytes = registry.counter_family(
            "univistor_read_bytes_total",
            "bytes delivered by the read service, split by path",
        );
        let read_replica = registry.counter_family(
            "univistor_read_replica_bytes_total",
            "bytes served from resilience replicas after node failures",
        );
        let replicated = registry.counter_family(
            "univistor_replicated_bytes_total",
            "bytes mirrored into buddy chains for resilience",
        );
        let promotions = registry.counter_family(
            "univistor_promotions_total",
            "segments promoted to DRAM by adaptive placement",
        );
        let flushes =
            registry.counter_family("univistor_flushes_total", "server-side flushes completed");
        let flush_gauge = registry.gauge_family(
            "univistor_flush_in_progress",
            "flushes currently draining (pipeline depth)",
        );
        // Flush sizes span bytes to tens of GiB: 4 KiB … 4 GiB, ×4.
        let drained_bounds = exponential_buckets(4096.0, 4.0, 10);
        let flush_drained = registry.histogram_family(
            "univistor_flush_drained_bytes",
            "logical bytes drained to the PFS per flush",
            &drained_bounds,
        );
        let per_server_bounds = exponential_buckets(1024.0, 4.0, 10);
        let flush_server = registry.histogram_family(
            "univistor_flush_server_bytes",
            "bytes one server wrote during one flush",
            &per_server_bounds,
        );
        let flush_source = registry.counter_family(
            "univistor_flush_source_bytes_total",
            "tier each flushed byte was read from",
        );
        let flush_revocations = registry.counter_family(
            "univistor_flush_lock_revocations_total",
            "Lustre extent-lock revocations suffered while flushing",
        );
        let flush_ost_writes = registry.counter_family(
            "univistor_flush_ost_writes_total",
            "OST object writes issued by flushes (after stripe coalescing)",
        );
        let flush_write_calls = registry.counter_family(
            "univistor_flush_write_calls_total",
            "Lustre object-write calls issued by flushes (one per coalesced run)",
        );
        let flush_spans = registry.counter_family(
            "univistor_flush_spans_total",
            "clipped spans drained by flushes (engine-independent)",
        );
        let flush_gather_round_trips = registry.counter_family(
            "univistor_flush_gather_round_trips_total",
            "chain read round-trips gathering flush data",
        );
        let flush_catchup_passes = registry.counter_family(
            "univistor_flush_catchup_passes_total",
            "generation-invalidated redo passes of the write-overlapped drain",
        );
        let sched = registry.counter_family(
            "univistor_sched_decisions_total",
            "interference-aware scheduler placement decisions",
        );
        let write_pieces = registry.counter_family(
            "univistor_write_pieces_total",
            "segment-grid pieces planned by write calls",
        );
        let write_records = registry.counter_family(
            "univistor_write_records_total",
            "metadata records committed by write calls (after coalescing)",
        );
        let write_locks = registry.counter_family(
            "univistor_write_lock_acquisitions_total",
            "lock round-trips spent by write calls, by lock category",
        );
        let read_locks = registry.counter_family(
            "univistor_read_lock_acquisitions_total",
            "shared lock round-trips spent by read calls, by lock category",
        );
        let read_cache_hits = registry.counter_family(
            "univistor_read_md_cache_hits_total",
            "distributed lookups served by the node's read record cache",
        );
        let read_cache_misses = registry.counter_family(
            "univistor_read_md_cache_misses_total",
            "distributed lookups that missed the cache and visited the KV servers",
        );
        let readahead_bytes = registry.counter_family(
            "univistor_read_readahead_bytes_total",
            "lookup-window bytes issued past request ends by sequential readahead",
        );
        let faults = registry.counter_family(
            "univistor_faults_injected_total",
            "fault injector firings, by kind",
        );
        let retries = registry.counter_family(
            "univistor_retries_total",
            "transient faults absorbed by a retry, by op kind",
        );
        let retry_exhausted = registry.counter_family(
            "univistor_retry_exhausted_total",
            "operations that failed after exhausting the retry budget",
        );
        let verify_failures = registry.counter_family(
            "univistor_integrity_verify_failures_total",
            "checksum verifies that failed, by verify point",
        );
        let scrub_segments = registry.counter_family(
            "univistor_scrub_segments_total",
            "records the scrubber has checksum-verified",
        );
        let scrub_detected = registry.counter_family(
            "univistor_scrub_corruptions_detected_total",
            "corrupt copies detected by checksum verification",
        );
        let scrub_repaired = registry.counter_family(
            "univistor_scrub_repaired_total",
            "corrupt copies repaired from a clean copy",
        );
        let degraded = registry.gauge_family(
            "univistor_degraded_segments",
            "metadata records whose primary or replica sits on a failed node",
        );
        let flush_skipped = registry.counter_family(
            "univistor_flush_skipped_lost_bytes_total",
            "bytes a degraded flush skipped because primary and replica were both lost",
        );
        let repaired = registry.counter_family(
            "univistor_repaired_segments_total",
            "records re-protected by online repair, by repaired role",
        );
        let repaired_bytes = registry.counter_family(
            "univistor_repaired_bytes_total",
            "bytes copied onto healthy chains by online repair",
        );
        let tiering_passes = registry.counter_family(
            "univistor_tiering_passes_total",
            "background tiering passes run across all nodes",
        );
        let tiering_spilled_segments = registry.counter_family(
            "univistor_tiering_spilled_segments_total",
            "segments spilled down a layer by watermark pressure, by source tier",
        );
        let tiering_spilled_bytes = registry.counter_family(
            "univistor_tiering_spilled_bytes_total",
            "bytes spilled down a layer by watermark pressure, by source tier",
        );
        let tiering_drained_segments = registry.counter_family(
            "univistor_tiering_drained_segments_total",
            "cold segments copied ahead to the PFS by the drain phase",
        );
        let tiering_drained_bytes = registry.counter_family(
            "univistor_tiering_drained_bytes_total",
            "bytes copied ahead to the PFS by the drain phase",
        );
        let tiering_promoted_segments = registry.counter_family(
            "univistor_tiering_promoted_segments_total",
            "segments promoted to the top layer by the benefit/cost policy",
        );
        let tiering_promoted_bytes = registry.counter_family(
            "univistor_tiering_promoted_bytes_total",
            "bytes moved up by benefit/cost promotions",
        );
        let tiering_heat_decays = registry.counter_family(
            "univistor_tiering_heat_decays_total",
            "periodic heat-counter halving ticks applied",
        );
        let tiering_paused = registry.gauge_family(
            "univistor_tiering_paused",
            "1 while the tiering engine is paused",
        );
        let tiering_catchup = registry.counter_family(
            "univistor_tiering_catchup_skipped_bytes_total",
            "bytes the close-time flush skipped because the drain daemon had already copied them",
        );

        let per_tier = |family: &univistor_obs::CounterFamily| -> [Counter; 4] {
            TIERS.map(|t| family.with(&[("tier", tier_label(t))]))
        };

        JobMetrics {
            opens: ops.with(&[("op", "open")]),
            closes: ops.with(&[("op", "close")]),
            writes: ops.with(&[("op", "write")]),
            reads: ops.with(&[("op", "read")]),
            md_open_close: md.with(&[("op", "open_close")]),
            md_write: md.with(&[("op", "write")]),
            md_read: md.with(&[("op", "read")]),
            md_local_hits: md_local.with(&[]),
            segments: segments.with(&[]),
            cached_bytes: per_tier(&cached),
            spill_events: per_tier(&spills),
            replicated_bytes: replicated.with(&[]),
            promotions: promotions.with(&[]),
            read_local_hit: read_bytes.with(&[("path", "local_hit")]),
            read_local_via_server: read_bytes.with(&[("path", "local_via_server")]),
            read_bb_direct: read_bytes.with(&[("path", "bb_direct")]),
            read_pfs_direct: read_bytes.with(&[("path", "pfs_direct")]),
            read_remote_hop: read_bytes.with(&[("path", "remote_hop")]),
            read_replica: read_replica.with(&[]),
            flushes: flushes.with(&[]),
            flush_in_progress: flush_gauge.with(&[]),
            flush_drained: flush_drained.with(&[]),
            flush_server_bytes: flush_server.with(&[]),
            flush_source: per_tier(&flush_source),
            flush_revocations: flush_revocations.with(&[]),
            flush_ost_writes: flush_ost_writes.with(&[]),
            flush_write_calls: flush_write_calls.with(&[]),
            flush_spans: flush_spans.with(&[]),
            flush_gather_round_trips: flush_gather_round_trips.with(&[]),
            flush_catchup_passes: flush_catchup_passes.with(&[]),
            write_pieces: write_pieces.with(&[]),
            write_records: write_records.with(&[]),
            write_locks: [
                write_locks.with(&[("lock", "chain")]),
                write_locks.with(&[("lock", "kv_shard")]),
                write_locks.with(&[("lock", "node_buffer")]),
                write_locks.with(&[("lock", "accounting")]),
            ],
            read_locks_chain: read_locks.with(&[("lock", "chain")]),
            read_md_cache_hits: read_cache_hits.with(&[]),
            read_md_cache_misses: read_cache_misses.with(&[]),
            read_readahead_bytes: readahead_bytes.with(&[]),
            faults: FaultCounters {
                transient: faults.with(&[("kind", "transient")]),
                node_loss: faults.with(&[("kind", "node_loss")]),
                latency: faults.with(&[("kind", "latency")]),
                corruption: faults.with(&[("kind", "corruption")]),
            },
            retries: RETRY_OPS.map(|op| retries.with(&[("op", op)])),
            retry_exhausted: retry_exhausted.with(&[]),
            verify_failures: VERIFY_SITES.map(|site| verify_failures.with(&[("site", site)])),
            scrub_segments: scrub_segments.with(&[]),
            scrub_detected: scrub_detected.with(&[]),
            scrub_repaired: scrub_repaired.with(&[]),
            degraded_segments: degraded.with(&[]),
            flush_skipped_lost_bytes: flush_skipped.with(&[]),
            repaired_primary: repaired.with(&[("role", "primary")]),
            repaired_replica: repaired.with(&[("role", "replica")]),
            repaired_bytes: repaired_bytes.with(&[]),
            tiering_passes: tiering_passes.with(&[]),
            tiering_spilled_segments: per_tier(&tiering_spilled_segments),
            tiering_spilled_bytes: per_tier(&tiering_spilled_bytes),
            tiering_drained_segments: tiering_drained_segments.with(&[]),
            tiering_drained_bytes: tiering_drained_bytes.with(&[]),
            tiering_promoted_segments: tiering_promoted_segments.with(&[]),
            tiering_promoted_bytes: tiering_promoted_bytes.with(&[]),
            tiering_heat_decays: tiering_heat_decays.with(&[]),
            tiering_paused: tiering_paused.with(&[]),
            tiering_catchup_bytes: tiering_catchup.with(&[]),
            sched: SchedCounters {
                free_core: sched.with(&[("decision", "free_core")]),
                stacked: sched.with(&[("decision", "stacked")]),
                flush_migrations: sched.with(&[("decision", "flush_migration")]),
            },
            registry,
        }
    }

    /// Point-in-time snapshot of every family.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.registry.snapshot()
    }

    /// The underlying registry (for registering extra families alongside).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Cached scheduler counters for [`crate::sched`].
    pub fn sched_counters(&self) -> SchedCounters {
        self.sched.clone()
    }

    /// Cached fault-injection counters for
    /// [`crate::fault::FaultInjector::install_counters`].
    pub fn fault_counters(&self) -> FaultCounters {
        self.faults.clone()
    }

    /// Cached mailbox instruments for one partition worker of the
    /// partitioned runtime. Families are registered on first use and
    /// deduplicated by the registry, so calling this once per worker at
    /// runtime construction is cheap and idempotent.
    pub fn partition_handles(&self, partition: usize) -> PartitionMetrics {
        let label = partition.to_string();
        let labels: &[(&str, &str)] = &[("partition", &label)];
        let depth = self.registry.gauge_family(
            "univistor_partition_mailbox_depth",
            "requests queued in the partition worker's mailbox",
        );
        // Mailbox waits span sub-microsecond handoffs to milliseconds
        // under load: 100 ns … ~1.6 s, ×4.
        let wait_bounds = exponential_buckets(1e-7, 4.0, 12);
        let wait = self.registry.histogram_family(
            "univistor_partition_wait_seconds",
            "enqueue-to-dequeue latency of partition mailbox messages",
            &wait_bounds,
        );
        let messages = self.registry.counter_family(
            "univistor_partition_messages_total",
            "messages dequeued by partition workers",
        );
        let batched = self.registry.counter_family(
            "univistor_partition_batched_ops_total",
            "logical batched operations carried by partition messages",
        );
        PartitionMetrics {
            mailbox_depth: depth.with(labels),
            wait_seconds: wait.with(labels),
            messages: messages.with(labels),
            batched_ops: batched.with(labels),
        }
    }

    /// Cached message-plane instruments for the partitioned runtime's
    /// routing layer. Idempotent, like
    /// [`partition_handles`](Self::partition_handles).
    pub fn msgplane_handles(&self) -> MsgPlaneMetrics {
        let round_trips = self.registry.counter_family(
            "univistor_partition_round_trips_total",
            "awaited request/reply round-trips issued by the routing layer",
        );
        let hits = self.registry.counter_family(
            "univistor_msgplane_reply_pool_hits_total",
            "awaited requests served by a recycled reply slot",
        );
        let misses = self.registry.counter_family(
            "univistor_msgplane_reply_pool_misses_total",
            "awaited requests that allocated a fresh reply slot",
        );
        MsgPlaneMetrics {
            round_trips: round_trips.with(&[]),
            pool_hits: hits.with(&[]),
            pool_misses: misses.with(&[]),
        }
    }

    /// A transient fault at `site` was absorbed by a retry. The site
    /// string is the injection site tag (`chain_append`, `chain_read`,
    /// `kv_insert`, `kv_lookup`, `flush_lookup`, ...), folded into the
    /// op-kind label so scrub- and app-path retries are distinguishable.
    pub fn record_retry(&self, site: &str) {
        self.retries[retry_index(site)].inc();
    }

    /// An operation failed after exhausting its retry budget.
    pub fn record_retry_exhausted(&self) {
        self.retry_exhausted.inc();
    }

    /// A checksum verify failed at the named verify point.
    pub fn record_verify_failure(&self, site: &'static str) {
        self.verify_failures[verify_site_index(site)].inc();
        self.scrub_detected.inc();
    }

    /// The scrubber checksum-verified `n` records.
    pub fn record_scrub_segments(&self, n: u64) {
        self.scrub_segments.add(n);
    }

    /// A corrupt copy was repaired from a clean one.
    pub fn record_scrub_repair(&self) {
        self.scrub_repaired.inc();
    }

    /// Publish the current count of degraded records (records whose
    /// primary or replica sits on a failed node).
    pub fn set_degraded_segments(&self, n: u64) {
        self.degraded_segments.set(n.min(i64::MAX as u64) as i64);
    }

    /// Account a repair pass: records whose primary / replica were
    /// re-protected, and the bytes copied onto healthy chains.
    pub fn record_repair(&self, primary: u64, replica: u64, bytes: u64) {
        self.repaired_primary.add(primary);
        self.repaired_replica.add(replica);
        self.repaired_bytes.add(bytes);
    }

    /// An open served (one metadata RPC against the file-name-hashed
    /// server — the all-to-one storm without COC).
    pub fn record_open(&self) {
        self.opens.inc();
        self.md_open_close.inc();
    }

    /// A close served (ditto).
    pub fn record_close(&self) {
        self.closes.inc();
        self.md_open_close.inc();
    }

    /// A write call accepted (before segmentation).
    pub fn record_write_call(&self) {
        self.writes.inc();
    }

    /// One segment placed by DHP: `layer` is the chain index it landed on
    /// (> 0 means the fastest layer was full — a spill event).
    pub fn record_segment(&self, tier: Tier, layer: usize, len: u64) {
        self.segments.inc();
        self.md_write.inc();
        self.cached_bytes[tier_index(tier)].add(len);
        if layer > 0 {
            self.spill_events[tier_index(tier)].inc();
        }
    }

    /// Bytes mirrored into a buddy chain.
    pub fn record_replication(&self, len: u64) {
        self.replicated_bytes.add(len);
    }

    /// One write call's pipeline accounting: how many grid pieces were
    /// planned, how many metadata records they coalesced into, and the lock
    /// round-trips spent. The coalescing ratio is `pieces / records`.
    pub fn record_write_batch(&self, pieces: u64, records: u64, locks: WriteLockCounts) {
        self.write_pieces.add(pieces);
        self.write_records.add(records);
        self.write_locks[0].add(locks.chain);
        self.write_locks[1].add(locks.kv_shard);
        self.write_locks[2].add(locks.node_buffer);
        self.write_locks[3].add(locks.accounting);
    }

    /// A read call's aggregated accounting.
    pub fn record_read_trace(&self, t: &ReadTrace) {
        self.reads.add(t.requests);
        self.md_read.add(t.md_rpcs);
        self.md_local_hits.add(t.local_md_hits);
        self.read_local_hit.add(t.local_direct_bytes);
        self.read_local_via_server.add(t.local_via_server_bytes);
        self.read_bb_direct.add(t.shared_direct_bytes);
        self.read_pfs_direct.add(t.pfs_direct_bytes);
        self.read_remote_hop.add(t.remote_bytes);
        self.read_replica.add(t.replica_bytes);
        self.read_md_cache_hits.add(t.md_cache_hits);
        self.read_md_cache_misses.add(t.md_cache_misses);
        self.read_readahead_bytes.add(t.readahead_bytes);
    }

    /// A read call's lock accounting: shared chain-lock round-trips spent
    /// fetching fragments (one per fragment on the per-record pipeline, one
    /// per producer group on the batched one).
    pub fn record_read_locks(&self, locks: ReadLockCounts) {
        self.read_locks_chain.add(locks.chain);
    }

    /// Segments promoted to DRAM.
    pub fn record_promotions(&self, n: u64) {
        self.promotions.add(n);
    }

    /// A flush entered the pipeline. Pair with [`Self::flush_finished`].
    pub fn flush_started(&self) {
        self.flush_in_progress.inc();
    }

    /// A flush left the pipeline (success or failure).
    pub fn flush_finished(&self) {
        self.flush_in_progress.dec();
    }

    /// Account a completed flush from its receipt.
    pub fn record_flush(&self, receipt: &FlushReceipt) {
        self.flushes.inc();
        self.flush_drained.observe(receipt.file_size as f64);
        for &bytes in &receipt.per_server_bytes {
            if bytes > 0 {
                self.flush_server_bytes.observe(bytes as f64);
            }
        }
        for &(tier, bytes) in &receipt.source_tier_bytes {
            self.flush_source[tier_index(tier)].add(bytes);
        }
        self.flush_revocations.add(receipt.lock_revocations);
        self.flush_ost_writes.add(receipt.ost_writes);
        self.flush_write_calls.add(receipt.write_calls);
        self.flush_spans.add(receipt.spans);
        self.flush_gather_round_trips
            .add(receipt.gather_round_trips);
        self.flush_catchup_passes.add(receipt.catchup_passes);
        self.flush_skipped_lost_bytes.add(receipt.lost.lost_bytes);
        self.tiering_catchup_bytes.add(receipt.drained_ahead_bytes);
    }

    /// One background tiering pass started on some node.
    pub fn record_tiering_pass(&self) {
        self.tiering_passes.inc();
    }

    /// One segment spilled down a layer; `tier` is the *source* tier it
    /// left.
    pub fn record_tiering_spill(&self, tier: Tier, len: u64) {
        self.tiering_spilled_segments[tier_index(tier)].inc();
        self.tiering_spilled_bytes[tier_index(tier)].add(len);
    }

    /// One cold segment copied ahead to the PFS by the drain phase.
    pub fn record_tiering_drain(&self, len: u64) {
        self.tiering_drained_segments.inc();
        self.tiering_drained_bytes.add(len);
    }

    /// One segment promoted to the top layer by the benefit/cost policy
    /// (pairs with [`Self::record_promotions`], which the legacy stats
    /// view reads).
    pub fn record_tiering_promotion(&self, len: u64) {
        self.tiering_promoted_segments.inc();
        self.tiering_promoted_bytes.add(len);
    }

    /// One periodic heat-halving tick applied.
    pub fn record_tiering_decay(&self) {
        self.tiering_heat_decays.inc();
    }

    /// Publish the engine's pause state.
    pub fn set_tiering_paused(&self, paused: bool) {
        self.tiering_paused.set(paused as i64);
    }

    /// Raw counter values backing the [`crate::server::JobStats`]
    /// compatibility view.
    pub(crate) fn scalars(&self) -> ScalarValues {
        ScalarValues {
            opens: self.opens.get(),
            closes: self.closes.get(),
            md_open_close: self.md_open_close.get(),
            md_write: self.md_write.get(),
            md_read: self.md_read.get(),
            md_local_hits: self.md_local_hits.get(),
            segments: self.segments.get(),
            cached_bytes: self.cached_bytes.each_ref().map(Counter::get),
            replicated_bytes: self.replicated_bytes.get(),
            promotions: self.promotions.get(),
            reads: self.reads.get(),
            read_local_hit: self.read_local_hit.get(),
            read_local_via_server: self.read_local_via_server.get(),
            read_bb_direct: self.read_bb_direct.get(),
            read_pfs_direct: self.read_pfs_direct.get(),
            read_remote_hop: self.read_remote_hop.get(),
            read_replica: self.read_replica.get(),
            read_md_cache_hits: self.read_md_cache_hits.get(),
            read_md_cache_misses: self.read_md_cache_misses.get(),
            read_readahead_bytes: self.read_readahead_bytes.get(),
        }
    }
}

/// A flat copy of the monotonic counters that the legacy `JobStats` view
/// is computed from. `stats()` reports `current - baseline`; `take_stats`
/// advances the baseline — phase-delta semantics on top of counters that
/// never reset.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct ScalarValues {
    pub opens: u64,
    pub closes: u64,
    pub md_open_close: u64,
    pub md_write: u64,
    pub md_read: u64,
    pub md_local_hits: u64,
    pub segments: u64,
    pub cached_bytes: [u64; 4],
    pub replicated_bytes: u64,
    pub promotions: u64,
    pub reads: u64,
    pub read_local_hit: u64,
    pub read_local_via_server: u64,
    pub read_bb_direct: u64,
    pub read_pfs_direct: u64,
    pub read_remote_hop: u64,
    pub read_replica: u64,
    pub read_md_cache_hits: u64,
    pub read_md_cache_misses: u64,
    pub read_readahead_bytes: u64,
}

impl ScalarValues {
    /// Element-wise `self - base` (counters are monotonic, so this never
    /// underflows for a baseline taken from the same panel).
    pub fn since(&self, base: &ScalarValues) -> ScalarValues {
        let mut tiers = [0u64; 4];
        for (i, t) in tiers.iter_mut().enumerate() {
            *t = self.cached_bytes[i] - base.cached_bytes[i];
        }
        ScalarValues {
            opens: self.opens - base.opens,
            closes: self.closes - base.closes,
            md_open_close: self.md_open_close - base.md_open_close,
            md_write: self.md_write - base.md_write,
            md_read: self.md_read - base.md_read,
            md_local_hits: self.md_local_hits - base.md_local_hits,
            segments: self.segments - base.segments,
            cached_bytes: tiers,
            replicated_bytes: self.replicated_bytes - base.replicated_bytes,
            promotions: self.promotions - base.promotions,
            reads: self.reads - base.reads,
            read_local_hit: self.read_local_hit - base.read_local_hit,
            read_local_via_server: self.read_local_via_server - base.read_local_via_server,
            read_bb_direct: self.read_bb_direct - base.read_bb_direct,
            read_pfs_direct: self.read_pfs_direct - base.read_pfs_direct,
            read_remote_hop: self.read_remote_hop - base.read_remote_hop,
            read_replica: self.read_replica - base.read_replica,
            read_md_cache_hits: self.read_md_cache_hits - base.read_md_cache_hits,
            read_md_cache_misses: self.read_md_cache_misses - base.read_md_cache_misses,
            read_readahead_bytes: self.read_readahead_bytes - base.read_readahead_bytes,
        }
    }

    /// Per-tier cached bytes as the map shape `JobStats` exposes, with
    /// zero tiers omitted (matching the old lazily-populated map).
    pub fn bytes_by_tier(&self) -> std::collections::BTreeMap<Tier, u64> {
        TIERS
            .iter()
            .zip(self.cached_bytes)
            .filter(|&(_, b)| b > 0)
            .map(|(&t, b)| (t, b))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_segment_splits_by_tier_and_spill() {
        let m = JobMetrics::new();
        m.record_segment(Tier::Dram, 0, 100);
        m.record_segment(Tier::SharedBurstBuffer, 1, 50);
        m.record_segment(Tier::SharedBurstBuffer, 1, 50);
        let snap = m.snapshot();
        assert_eq!(
            snap.counter("univistor_cached_bytes_total", &[("tier", "dram")]),
            Some(100)
        );
        assert_eq!(
            snap.counter("univistor_cached_bytes_total", &[("tier", "burst_buffer")]),
            Some(100)
        );
        assert_eq!(
            snap.counter(
                "univistor_tier_spill_events_total",
                &[("tier", "burst_buffer")]
            ),
            Some(2)
        );
        // Layer 0 never counts as a spill (the child exists at zero —
        // the panel pre-registers every tier's handle).
        assert_eq!(
            snap.counter("univistor_tier_spill_events_total", &[("tier", "dram")]),
            Some(0)
        );
        assert_eq!(snap.counter_total("univistor_segments_total"), 3);
    }

    #[test]
    fn read_trace_maps_onto_path_labels() {
        let m = JobMetrics::new();
        m.record_read_trace(&ReadTrace {
            local_direct_bytes: 10,
            local_via_server_bytes: 20,
            shared_direct_bytes: 30,
            pfs_direct_bytes: 40,
            remote_bytes: 50,
            md_rpcs: 2,
            local_md_hits: 3,
            requests: 1,
            replica_bytes: 5,
            md_cache_hits: 4,
            md_cache_misses: 6,
            readahead_bytes: 7,
        });
        m.record_read_locks(ReadLockCounts { chain: 9 });
        let snap = m.snapshot();
        assert_eq!(
            snap.counter("univistor_read_bytes_total", &[("path", "local_hit")]),
            Some(10)
        );
        assert_eq!(
            snap.counter("univistor_read_bytes_total", &[("path", "remote_hop")]),
            Some(50)
        );
        assert_eq!(
            snap.counter("univistor_md_rpcs_total", &[("op", "read")]),
            Some(2)
        );
        assert_eq!(snap.counter_total("univistor_md_local_hits_total"), 3);
        assert_eq!(snap.counter_total("univistor_read_md_cache_hits_total"), 4);
        assert_eq!(
            snap.counter_total("univistor_read_md_cache_misses_total"),
            6
        );
        assert_eq!(
            snap.counter_total("univistor_read_readahead_bytes_total"),
            7
        );
        assert_eq!(
            snap.counter(
                "univistor_read_lock_acquisitions_total",
                &[("lock", "chain")]
            ),
            Some(9)
        );
    }

    #[test]
    fn scalar_baseline_diffs() {
        let m = JobMetrics::new();
        m.record_open();
        m.record_segment(Tier::Dram, 0, 64);
        let base = m.scalars();
        m.record_open();
        m.record_segment(Tier::Dram, 0, 64);
        m.record_segment(Tier::Pfs, 1, 32);
        let d = m.scalars().since(&base);
        assert_eq!(d.opens, 1);
        assert_eq!(d.segments, 2);
        assert_eq!(
            d.bytes_by_tier(),
            [(Tier::Dram, 64), (Tier::Pfs, 32)].into_iter().collect()
        );
    }

    #[test]
    fn flush_receipt_feeds_histograms() {
        let m = JobMetrics::new();
        m.flush_started();
        m.record_flush(&FlushReceipt {
            dest: "/f".into(),
            file_size: 4096,
            plan: crate::striping::naive_plan(4096, 2, 4, 1024),
            per_server_bytes: vec![2048, 2048],
            per_ost_bytes: vec![1024; 4],
            source_tier_bytes: vec![(Tier::Dram, 4096)],
            lock_revocations: 3,
            osts_per_server: 4,
            lost: crate::flush::FlushReport {
                lost_segments: 1,
                lost_bytes: 256,
            },
            drained_ahead_bytes: 512,
            ost_writes: 12,
            write_calls: 6,
            spans: 8,
            gather_round_trips: 5,
            catchup_passes: 2,
        });
        m.flush_finished();
        let snap = m.snapshot();
        let h = snap
            .histogram("univistor_flush_drained_bytes", &[])
            .expect("histogram present");
        assert_eq!(h.count, 1);
        assert_eq!(h.sum, 4096.0);
        let per_server = snap
            .histogram("univistor_flush_server_bytes", &[])
            .expect("per-server histogram");
        assert_eq!(per_server.count, 2);
        assert_eq!(snap.gauge("univistor_flush_in_progress", &[]), Some(0));
        assert_eq!(
            snap.counter("univistor_flush_lock_revocations_total", &[]),
            Some(3)
        );
        assert_eq!(
            snap.counter("univistor_flush_skipped_lost_bytes_total", &[]),
            Some(256)
        );
        assert_eq!(
            snap.counter("univistor_tiering_catchup_skipped_bytes_total", &[]),
            Some(512)
        );
        assert_eq!(
            snap.counter("univistor_flush_ost_writes_total", &[]),
            Some(12)
        );
        assert_eq!(
            snap.counter("univistor_flush_write_calls_total", &[]),
            Some(6)
        );
        assert_eq!(snap.counter("univistor_flush_spans_total", &[]), Some(8));
        assert_eq!(
            snap.counter("univistor_flush_gather_round_trips_total", &[]),
            Some(5)
        );
        assert_eq!(
            snap.counter("univistor_flush_catchup_passes_total", &[]),
            Some(2)
        );
    }

    #[test]
    fn tiering_families_record() {
        let m = JobMetrics::new();
        m.record_tiering_pass();
        m.record_tiering_spill(Tier::Dram, 64);
        m.record_tiering_spill(Tier::Dram, 64);
        m.record_tiering_drain(128);
        m.record_tiering_promotion(32);
        m.record_tiering_decay();
        m.set_tiering_paused(true);
        let snap = m.snapshot();
        assert_eq!(snap.counter_total("univistor_tiering_passes_total"), 1);
        assert_eq!(
            snap.counter(
                "univistor_tiering_spilled_segments_total",
                &[("tier", "dram")]
            ),
            Some(2)
        );
        assert_eq!(
            snap.counter("univistor_tiering_spilled_bytes_total", &[("tier", "dram")]),
            Some(128)
        );
        assert_eq!(
            snap.counter_total("univistor_tiering_drained_segments_total"),
            1
        );
        assert_eq!(
            snap.counter_total("univistor_tiering_drained_bytes_total"),
            128
        );
        assert_eq!(
            snap.counter_total("univistor_tiering_promoted_segments_total"),
            1
        );
        assert_eq!(
            snap.counter_total("univistor_tiering_promoted_bytes_total"),
            32
        );
        assert_eq!(snap.counter_total("univistor_tiering_heat_decays_total"), 1);
        assert_eq!(snap.gauge("univistor_tiering_paused", &[]), Some(1));
        m.set_tiering_paused(false);
        assert_eq!(m.snapshot().gauge("univistor_tiering_paused", &[]), Some(0));
    }

    #[test]
    fn fault_and_repair_families_record() {
        let m = JobMetrics::new();
        let faults = m.fault_counters();
        faults.transient.inc();
        faults.transient.inc();
        faults.node_loss.inc();
        m.record_retry("chain_read");
        m.record_retry_exhausted();
        m.set_degraded_segments(7);
        m.record_repair(3, 4, 2048);
        let snap = m.snapshot();
        assert_eq!(
            snap.counter("univistor_faults_injected_total", &[("kind", "transient")]),
            Some(2)
        );
        assert_eq!(
            snap.counter("univistor_faults_injected_total", &[("kind", "node_loss")]),
            Some(1)
        );
        assert_eq!(snap.counter_total("univistor_retries_total"), 1);
        assert_eq!(
            snap.counter("univistor_retries_total", &[("op", "read")]),
            Some(1),
            "chain_read maps onto the read op label"
        );
        assert_eq!(snap.counter_total("univistor_retry_exhausted_total"), 1);
        assert_eq!(snap.gauge("univistor_degraded_segments", &[]), Some(7));
        assert_eq!(
            snap.counter("univistor_repaired_segments_total", &[("role", "primary")]),
            Some(3)
        );
        assert_eq!(
            snap.counter("univistor_repaired_segments_total", &[("role", "replica")]),
            Some(4)
        );
        assert_eq!(snap.counter_total("univistor_repaired_bytes_total"), 2048);
        m.set_degraded_segments(0);
        assert_eq!(
            m.snapshot().gauge("univistor_degraded_segments", &[]),
            Some(0)
        );
    }

    #[test]
    fn retry_sites_map_onto_op_labels() {
        let m = JobMetrics::new();
        m.record_retry("chain_append");
        m.record_retry("chain_read");
        m.record_retry("kv_insert");
        m.record_retry("kv_lookup");
        m.record_retry("flush_lookup");
        m.record_retry("mystery_site");
        let snap = m.snapshot();
        for (op, want) in [
            ("append", 1),
            ("read", 1),
            ("kv", 2),
            ("flush", 1),
            ("other", 1),
        ] {
            assert_eq!(
                snap.counter("univistor_retries_total", &[("op", op)]),
                Some(want),
                "op label {op}"
            );
        }
        assert_eq!(snap.counter_total("univistor_retries_total"), 6);
    }

    #[test]
    fn integrity_and_scrub_families_record() {
        let m = JobMetrics::new();
        m.record_verify_failure("read");
        m.record_verify_failure("scrub");
        m.record_scrub_segments(10);
        m.record_scrub_repair();
        let snap = m.snapshot();
        assert_eq!(
            snap.counter(
                "univistor_integrity_verify_failures_total",
                &[("site", "read")]
            ),
            Some(1)
        );
        assert_eq!(
            snap.counter(
                "univistor_integrity_verify_failures_total",
                &[("site", "scrub")]
            ),
            Some(1)
        );
        assert_eq!(snap.counter_total("univistor_scrub_segments_total"), 10);
        assert_eq!(
            snap.counter_total("univistor_scrub_corruptions_detected_total"),
            2
        );
        assert_eq!(snap.counter_total("univistor_scrub_repaired_total"), 1);
    }
}
