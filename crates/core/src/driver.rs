//! The UniviStor ADIO driver (§II-F).
//!
//! Applications select UniviStor by forcing the file-system type
//! (`ROMIO_FSTYPE_FORCE=UniviStor`); their unchanged `MPI_File_*` calls
//! then flow through this driver into the job's servers. The driver
//! implements the Collective Open/Close optimization: when enabled, only
//! the root rank sends the open/close metadata RPC (the result reaches the
//! other ranks through the collective's broadcast), turning the all-to-one
//! storm into a single request.
//!
//! One driver instance represents one *application* of the job (`app` id);
//! coupled applications each construct their own driver over the shared
//! [`UniviStorJob`].

use crate::metadata::ClientId;
use crate::server::UniviStorJob;
use std::sync::Arc;
use univistor_mpi::driver::{FileHandle, FsDriver, OpenContext};
use univistor_sim::{Payload, SimResult};

/// Driver name matched against `ROMIO_FSTYPE_FORCE`.
pub const DRIVER_NAME: &str = "UniviStor";

/// The ADIO driver for one application.
pub struct UniviStorDriver {
    job: Arc<UniviStorJob>,
    app: u32,
}

impl UniviStorDriver {
    /// A driver for application `app` over a running job.
    pub fn new(job: Arc<UniviStorJob>, app: u32) -> Self {
        UniviStorDriver { job, app }
    }

    /// The underlying job (tests, verification).
    pub fn job(&self) -> &UniviStorJob {
        &self.job
    }

    /// The shared job handle (for constructing a coupled application's
    /// driver over the same job).
    pub fn job_arc(&self) -> &Arc<UniviStorJob> {
        &self.job
    }

    fn client(&self, rank: usize) -> ClientId {
        ClientId::new(self.app, rank as u32)
    }
}

impl FsDriver for UniviStorDriver {
    fn name(&self) -> &'static str {
        DRIVER_NAME
    }

    fn open(&self, ctx: &OpenContext) -> SimResult<FileHandle> {
        let coc = self.job.cfg().features.collective_open_close;
        let is_root = ctx.rank == 0;
        self.job.connect(self.client(ctx.rank));
        let fid = if coc && !is_root {
            // Root already performed (or will perform) the metadata RPC on
            // behalf of everyone; the collective open's agreement step in
            // MpiFile::open orders us after it. No RPC from this rank.
            0
        } else {
            let represents = if coc { ctx.nprocs } else { 1 };
            self.job
                .open_file(&ctx.path)
                .mode(ctx.mode)
                .representing(represents)
                .lock_holder(is_root)
                .by(self.client(ctx.rank))?
        };
        Ok(FileHandle {
            fid,
            path: ctx.path.clone(),
            mode: ctx.mode,
            nprocs: ctx.nprocs,
        })
    }

    fn write_at(&self, h: &FileHandle, rank: usize, offset: u64, data: Payload) -> SimResult<()> {
        Ok(self.job.write(self.client(rank), &h.path, offset, data)?)
    }

    fn read_at(&self, h: &FileHandle, rank: usize, offset: u64, len: u64) -> SimResult<Payload> {
        Ok(self.job.read(self.client(rank), &h.path, offset, len)?)
    }

    fn close(&self, h: &FileHandle, rank: usize) -> SimResult<()> {
        let coc = self.job.cfg().features.collective_open_close;
        let is_root = rank == 0;
        if !coc || is_root {
            // Under COC the root's close represents the whole communicator
            // (its open registered nprocs); otherwise every rank closes for
            // itself.
            let represents = if coc { h.nprocs } else { 1 };
            self.job
                .close(&h.path, self.client(rank), h.mode, represents, is_root)?;
        }
        self.job.disconnect(self.client(rank));
        Ok(())
    }

    fn file_size(&self, h: &FileHandle) -> SimResult<u64> {
        Ok(self.job.file_size(&h.path)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::UniviStorConfig;
    use univistor_mpi::driver::OpenMode;
    use univistor_mpi::{Hints, MpiFile, World};

    fn driver(coc: bool) -> UniviStorDriver {
        let mut cfg = UniviStorConfig::test_small(2, 2);
        cfg.features.collective_open_close = coc;
        UniviStorDriver::new(Arc::new(UniviStorJob::new(cfg)), 0)
    }

    #[test]
    fn spmd_write_read_through_mpiio() {
        for coc in [false, true] {
            let d = driver(coc);
            let oks = World::run(4, |comm| {
                let f =
                    MpiFile::open(&comm, &d, "/exp", OpenMode::ReadWrite, Hints::new()).unwrap();
                let mine = Payload::pattern(comm.rank() as u64, 256);
                f.write_at_all(comm.rank() as u64 * 256, mine).unwrap();
                let next = (comm.rank() + 1) % comm.size();
                let theirs = f.read_at_all(next as u64 * 256, 256).unwrap();
                let ok = theirs.content_eq(&Payload::pattern(next as u64, 256));
                f.close().unwrap();
                ok
            });
            assert_eq!(oks, vec![true; 4], "coc={coc}");
            // Close flushed to Lustre.
            assert_eq!(d.job().lustre_file_size("/exp").unwrap(), 1024);
        }
    }

    #[test]
    fn coc_sends_one_open_rpc_instead_of_nprocs() {
        let d_coc = driver(true);
        World::run(4, |comm| {
            let f = MpiFile::open(&comm, &d_coc, "/f", OpenMode::Write, Hints::new()).unwrap();
            f.write_at(0, Payload::pattern(1, 64)).unwrap();
            f.close().unwrap();
        });
        let d_storm = driver(false);
        World::run(4, |comm| {
            let f = MpiFile::open(&comm, &d_storm, "/f", OpenMode::Write, Hints::new()).unwrap();
            f.write_at(0, Payload::pattern(1, 64)).unwrap();
            f.close().unwrap();
        });
        let coc_rpcs = d_coc.job().stats().open_close_md_rpcs;
        let storm_rpcs = d_storm.job().stats().open_close_md_rpcs;
        assert_eq!(coc_rpcs, 2, "COC: one open + one close");
        assert_eq!(storm_rpcs, 8, "storm: nprocs opens + nprocs closes");
    }

    #[test]
    fn connection_management_tracks_clients() {
        let d = driver(true);
        World::run(3, |comm| {
            let f = MpiFile::open(&comm, &d, "/f", OpenMode::Write, Hints::new()).unwrap();
            comm.barrier();
            f.close().unwrap();
        });
        // All clients disconnected after close.
        assert_eq!(d.job().connected_count(), 0);
    }
}
