//! Server-side asynchronous flush (§II-A, §II-D).
//!
//! At file-close time the UniviStor servers collectively move the cached
//! data to the PFS for long-term persistence, overlapping the application's
//! next compute phase. The logical file is split into one contiguous range
//! per server; each server gathers its range's segments from wherever DHP
//! placed them (its node's DRAM logs, the shared burst buffer, …) and
//! writes them to Lustre with the striping chosen by
//! [`crate::striping::adaptive_plan`] (or the all-OST naive layout when
//! ADPT is disabled).
//!
//! The flush is *functional*: bytes land in OST objects and can be read
//! back from Lustre. The [`FlushReceipt`] captures everything the timing
//! plane needs: per-server and per-OST byte loads, which tier each byte
//! came from, stripe-synchronization fan-out, and lock revocations.

use crate::config::UniviStorConfig;
use crate::fault::{with_retries, FaultInjector};
use crate::metadata::MetadataService;
use crate::metrics::JobMetrics;
use crate::placement::ChainSet;
use crate::striping::{adaptive_plan, naive_plan, StripePlan};
use crate::tiering::DrainLedger;
use crate::va::{Tier, VirtualAddr};
use std::collections::{HashMap, HashSet};
use std::sync::RwLock;
use univistor_pfs::Lustre;
use univistor_sim::{SimError, SimResult};

/// What one flush did.
#[derive(Debug, Clone)]
pub struct FlushReceipt {
    /// Destination path on the PFS.
    pub dest: String,
    /// Logical bytes flushed.
    pub file_size: u64,
    /// The striping decision.
    pub plan: StripePlan,
    /// Bytes written by each flushing server.
    pub per_server_bytes: Vec<u64>,
    /// Bytes received by each OST.
    pub per_ost_bytes: Vec<u64>,
    /// Bytes sourced from each tier (DRAM vs. BB vs. PFS-log).
    pub source_tier_bytes: Vec<(Tier, u64)>,
    /// Lustre lock revocations during the flush.
    pub lock_revocations: u64,
    /// Distinct OSTs each server contacted (sync overhead driver).
    pub osts_per_server: usize,
    /// Spans this flush could not move because primary and replica were
    /// both on failed nodes (degraded-mode accounting).
    pub lost: FlushReport,
    /// Bytes this flush skipped because the background drain had already
    /// copied them (and their records were still current) — the catch-up
    /// saving. Always 0 without a resume ledger.
    pub drained_ahead_bytes: u64,
}

/// Degraded-mode accounting of one flush: the spans skipped because no
/// healthy copy existed. A fully healthy flush reports all zeros.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlushReport {
    /// Clipped spans skipped (a record clipped by several server ranges
    /// counts once per range).
    pub lost_segments: u64,
    /// Bytes skipped.
    pub lost_bytes: u64,
}

/// Flush every byte of `fid` (logical size `file_size`) to `dest` on
/// `lustre`, using the configuration's striping mode and server count.
/// Segments whose primary node is in `failed_nodes` are flushed from
/// their resilience replicas. A completed flush is accounted into
/// `metrics` (drained/per-server histograms, source tiers, revocations)
/// when a panel is given.
///
/// The flush **degrades gracefully**: a span whose primary *and* replica
/// (or a replica-less span whose primary) sit on failed nodes is skipped
/// rather than aborting the pass — every healthy byte still lands on the
/// PFS, and the skipped spans are reported in the receipt's
/// [`FlushReport`] (feeding `univistor_flush_skipped_lost_bytes_total`).
/// A shortfall *not* explained by lost spans (a genuine hole) is still an
/// error. Transient faults from `injector` on the lookup and
/// chain-read steps are retried under `cfg.retry`.
///
/// `lustre` is locked exclusively only around the individual
/// create/delete/write calls, so a long flush does not starve concurrent
/// `lustre_read`s; segment gathering takes shared chain/metadata locks.
///
/// `resume` is the background drain's ledger for this file (see
/// [`crate::tiering`]): spans whose ledger entry still matches the live
/// record were already copied to `dest` and are skipped — the catch-up
/// path that makes close-time flush cheap under a running daemon. The
/// destination is then *not* recreated (it holds the drained bytes) and
/// the ledger's striping plan is reused, with its last server range
/// extended to cover growth since the plan was fixed.
#[allow(clippy::too_many_arguments)]
pub fn flush_file(
    metadata: &MetadataService,
    chains: &ChainSet,
    lustre: &RwLock<Lustre>,
    cfg: &UniviStorConfig,
    failed_nodes: &HashSet<usize>,
    metrics: Option<&JobMetrics>,
    injector: Option<&FaultInjector>,
    fid: u64,
    file_size: u64,
    dest: &str,
    resume: Option<&DrainLedger>,
) -> SimResult<FlushReceipt> {
    if file_size == 0 {
        return Err(SimError::InvalidFlow("flush of empty file".into()));
    }
    let servers = cfg.geometry.total_servers();
    let osts = lustre.read().expect("lustre poisoned").ost_count();
    // A ledger is only trustworthy while the destination it drained into
    // still exists.
    let resume = resume.filter(|_| lustre.read().expect("lustre poisoned").exists(dest));
    let plan = match resume {
        Some(ledger) => {
            let mut plan = ledger.plan.clone();
            // The file may have grown since the drain fixed the plan; the
            // layout's last range is open-ended, so only the accounting
            // ranges need stretching.
            if let Some(last) = plan.server_ranges.last_mut() {
                last.1 = last.1.max(file_size);
            }
            plan
        }
        None => {
            if cfg.features.adaptive_striping {
                adaptive_plan(file_size, servers, osts, cfg.alpha, cfg.cal.max_stripe_size)
            } else {
                naive_plan(file_size, servers, osts, cfg.cal.default_stripe_size)
            }
        }
    };

    // (Re-)create the destination with the chosen layout — unless a
    // resume ledger vouches for the existing file's drained contents.
    if resume.is_none() {
        let mut pfs = lustre.write().expect("lustre poisoned");
        if pfs.exists(dest) {
            pfs.delete(dest)?;
        }
        pfs.create(dest, plan.layout.clone())?;
    }

    let mut per_server_bytes = vec![0u64; servers];
    let mut per_ost_bytes = vec![0u64; osts];
    let mut source_tiers: HashMap<Tier, u64> = HashMap::new();
    let mut revocations = 0u64;
    let mut lost = FlushReport::default();
    let mut drained_ahead = 0u64;

    for (server, &(start, end)) in plan.server_ranges.iter().enumerate() {
        if end <= start {
            continue;
        }
        // One instrumented metadata fetch per server range; transient
        // faults are absorbed by the retry budget.
        if let Some(inj) = injector {
            with_retries(&cfg.retry, metrics, || inj.inject("flush_lookup", None))?;
        }
        let (_, records) = metadata.lookup_range(fid, start, end);
        for (key, rec) in records {
            let seg_end = key.offset + rec.len;
            let clip_lo = key.offset.max(start);
            let clip_hi = seg_end.min(end);
            if clip_hi <= clip_lo {
                continue;
            }
            let clip_len = clip_hi - clip_lo;
            // Catch-up: the drain already copied this exact record's
            // bytes to `dest`. Checked before the health split, so a
            // drained span survives even when its source node has since
            // failed.
            if let Some(ledger) = resume {
                if ledger.spans.get(&key.offset) == Some(&rec) {
                    drained_ahead += clip_len;
                    continue;
                }
            }
            let primary_node = cfg.geometry.node_of_rank(rec.client.rank as usize);
            // Prefer the primary; fall back to a replica on a healthy
            // node; with neither, the span is lost — skip it and account
            // it instead of aborting the whole pass.
            let healthy_source = if !failed_nodes.contains(&primary_node) {
                Some((rec.client, rec.va))
            } else {
                rec.replica.filter(|(rc, _)| {
                    !failed_nodes.contains(&cfg.geometry.node_of_rank(rc.rank as usize))
                })
            };
            let Some((source, base_va)) = healthy_source else {
                lost.lost_segments += 1;
                lost.lost_bytes += clip_len;
                continue;
            };
            let va = VirtualAddr(base_va.0 + (clip_lo - key.offset));
            let (payload, tier) =
                with_retries(&cfg.retry, metrics, || chains.read_at(source, va, clip_len))?;
            *source_tiers.entry(tier).or_insert(0) += clip_len;
            let receipt = lustre.write().expect("lustre poisoned").write(
                dest,
                clip_lo,
                payload,
                server as u64,
            )?;
            revocations += receipt.lock_revocations;
            for (ost, bytes) in receipt.ost_bytes() {
                per_ost_bytes[ost] += bytes;
            }
            per_server_bytes[server] += clip_len;
        }
    }

    let flushed: u64 = per_server_bytes.iter().sum();
    if flushed + lost.lost_bytes + drained_ahead != file_size {
        return Err(SimError::InvalidFlow(format!(
            "flush moved {flushed} of {file_size} bytes ({} lost to failures, \
             {drained_ahead} drained ahead) — holes in '{dest}'?",
            lost.lost_bytes
        )));
    }

    let mut source_tier_bytes: Vec<(Tier, u64)> = source_tiers.into_iter().collect();
    source_tier_bytes.sort_by_key(|(t, _)| *t);
    let receipt = FlushReceipt {
        dest: dest.to_string(),
        file_size,
        osts_per_server: plan.osts_per_server,
        plan,
        per_server_bytes,
        per_ost_bytes,
        source_tier_bytes,
        lock_revocations: revocations,
        lost,
        drained_ahead_bytes: drained_ahead,
    };
    if let Some(m) = metrics {
        m.record_flush(&receipt);
    }
    Ok(receipt)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metadata::{ClientId, SegKey, SegmentRecord};
    use crate::placement::ProcChain;
    use univistor_sim::Payload;

    /// 2 nodes × 2 clients; 128 B DRAM + 128 B BB per-proc logs, 64 B
    /// chunks/segments; 4 servers.
    fn setup() -> (MetadataService, ChainSet, RwLock<Lustre>, UniviStorConfig) {
        let mut cfg = UniviStorConfig::test_small(2, 2);
        cfg.geometry.servers_per_node = 2;
        let metadata = MetadataService::new(256, 4, 2);
        let chains: ChainSet = (0..4u32)
            .map(|rank| {
                (
                    ClientId::new(0, rank),
                    ProcChain::new(
                        vec![
                            (Tier::Dram, 128),
                            (Tier::SharedBurstBuffer, 128),
                            (Tier::Pfs, u64::MAX),
                        ],
                        64,
                    )
                    .unwrap(),
                )
            })
            .collect();
        (metadata, chains, RwLock::new(Lustre::new(8)), cfg)
    }

    fn populate(metadata: &MetadataService, chains: &ChainSet, segs_per_client: u64) -> u64 {
        for rank in 0..4u32 {
            let client = ClientId::new(0, rank);
            for i in 0..segs_per_client {
                let logical = (rank as u64 * segs_per_client + i) * 64;
                let placed = chains
                    .append(client, Payload::pattern(logical, 64))
                    .unwrap();
                metadata.insert(
                    SegKey {
                        fid: 1,
                        offset: logical,
                    },
                    SegmentRecord::new(client, placed.va, 64),
                    (rank / 2) as usize,
                );
            }
        }
        4 * segs_per_client * 64
    }

    #[test]
    fn flushed_file_reads_back_from_lustre() {
        let (md, chains, lustre, cfg) = setup();
        let size = populate(&md, &chains, 4);
        let receipt = flush_file(
            &md,
            &chains,
            &lustre,
            &cfg,
            &HashSet::new(),
            None,
            None,
            1,
            size,
            "/pfs/f",
            None,
        )
        .unwrap();
        assert_eq!(receipt.file_size, size);
        let lustre = lustre.read().unwrap();
        assert_eq!(lustre.file_size("/pfs/f").unwrap(), size);
        let whole = lustre.read("/pfs/f", 0, size, 999).unwrap();
        for s in 0..(size / 64) {
            assert!(
                whole
                    .slice(s * 64, 64)
                    .content_eq(&Payload::pattern(s * 64, 64)),
                "segment {s} corrupt on PFS"
            );
        }
    }

    #[test]
    fn receipt_accounts_every_byte() {
        let (md, chains, lustre, cfg) = setup();
        let size = populate(&md, &chains, 4);
        let m = JobMetrics::new();
        let r = flush_file(
            &md,
            &chains,
            &lustre,
            &cfg,
            &HashSet::new(),
            Some(&m),
            None,
            1,
            size,
            "/pfs/f",
            None,
        )
        .unwrap();
        assert_eq!(r.per_server_bytes.iter().sum::<u64>(), size);
        assert_eq!(r.per_ost_bytes.iter().sum::<u64>(), size);
        let by_tier: u64 = r.source_tier_bytes.iter().map(|(_, b)| b).sum();
        assert_eq!(by_tier, size);
        // Data spilled across DRAM and BB: both tiers must appear.
        let tiers: Vec<Tier> = r.source_tier_bytes.iter().map(|(t, _)| *t).collect();
        assert!(tiers.contains(&Tier::Dram));
        assert!(tiers.contains(&Tier::SharedBurstBuffer));
        // The panel agrees with the receipt.
        let snap = m.snapshot();
        assert_eq!(
            snap.counter_total("univistor_flush_source_bytes_total"),
            size
        );
        assert_eq!(
            snap.histogram("univistor_flush_drained_bytes", &[])
                .expect("drained histogram")
                .sum,
            size as f64
        );
    }

    #[test]
    fn adaptive_and_naive_both_produce_correct_files() {
        for adaptive in [true, false] {
            let (md, chains, lustre, mut cfg) = setup();
            cfg.features.adaptive_striping = adaptive;
            let size = populate(&md, &chains, 2);
            let r = flush_file(
                &md,
                &chains,
                &lustre,
                &cfg,
                &HashSet::new(),
                None,
                None,
                1,
                size,
                "/pfs/f",
                None,
            )
            .unwrap();
            let whole = lustre.read().unwrap().read("/pfs/f", 0, size, 999).unwrap();
            assert_eq!(whole.len(), size, "adaptive={adaptive}");
            assert_eq!(r.file_size, size);
        }
    }

    #[test]
    fn reflush_overwrites_destination() {
        let (md, chains, lustre, cfg) = setup();
        let size = populate(&md, &chains, 2);
        flush_file(
            &md,
            &chains,
            &lustre,
            &cfg,
            &HashSet::new(),
            None,
            None,
            1,
            size,
            "/pfs/f",
            None,
        )
        .unwrap();
        // Flush again (e.g. the file was re-opened and appended — here
        // identical): destination is recreated, not corrupted.
        flush_file(
            &md,
            &chains,
            &lustre,
            &cfg,
            &HashSet::new(),
            None,
            None,
            1,
            size,
            "/pfs/f",
            None,
        )
        .unwrap();
        assert_eq!(lustre.read().unwrap().file_size("/pfs/f").unwrap(), size);
    }

    #[test]
    fn flush_with_holes_fails() {
        let (md, chains, lustre, cfg) = setup();
        let size = populate(&md, &chains, 2);
        // Claim the file is bigger than what was written.
        let err = flush_file(
            &md,
            &chains,
            &lustre,
            &cfg,
            &HashSet::new(),
            None,
            None,
            1,
            size + 64,
            "/pfs/f",
            None,
        )
        .unwrap_err();
        assert!(matches!(err, SimError::InvalidFlow(_)));
    }

    #[test]
    fn degraded_flush_skips_lost_spans_and_reports_them() {
        let (md, chains, lustre, cfg) = setup();
        let size = populate(&md, &chains, 2);
        // No replicas were written, and node 0 (ranks 0 and 1, logical
        // [0, 256)) fails: that half is lost, the other half must still
        // land on the PFS.
        let failed: HashSet<usize> = [0].into_iter().collect();
        let m = JobMetrics::new();
        let r = flush_file(
            &md,
            &chains,
            &lustre,
            &cfg,
            &failed,
            Some(&m),
            None,
            1,
            size,
            "/pfs/f",
            None,
        )
        .unwrap();
        assert_eq!(r.lost.lost_bytes, size / 2);
        assert!(r.lost.lost_segments >= 4, "{:?}", r.lost);
        assert_eq!(r.per_server_bytes.iter().sum::<u64>(), size / 2);
        // The healthy half is byte-identical on Lustre.
        let pfs = lustre.read().unwrap();
        for s in (size / 2 / 64)..(size / 64) {
            let got = pfs.read("/pfs/f", s * 64, 64, 999).unwrap();
            assert!(got.content_eq(&Payload::pattern(s * 64, 64)), "segment {s}");
        }
        drop(pfs);
        // The skipped bytes feed the telemetry counter.
        assert_eq!(
            m.snapshot()
                .counter_total("univistor_flush_skipped_lost_bytes_total"),
            size / 2
        );
    }

    #[test]
    fn flush_retries_exhaust_on_persistent_transient_faults() {
        use crate::fault::{FaultConfig, FaultInjector};
        let (md, chains, lustre, mut cfg) = setup();
        let size = populate(&md, &chains, 2);
        cfg.retry.backoff_base_us = 0;
        cfg.retry.backoff_cap_us = 0;
        let inj = FaultInjector::new(FaultConfig {
            seed: 3,
            transient_prob: 1.0,
            ..FaultConfig::default()
        });
        let err = flush_file(
            &md,
            &chains,
            &lustre,
            &cfg,
            &HashSet::new(),
            None,
            Some(&inj),
            1,
            size,
            "/pfs/f",
            None,
        )
        .unwrap_err();
        match err {
            SimError::Transient { attempt, .. } => {
                assert_eq!(attempt, cfg.retry.max_attempts)
            }
            other => panic!("expected exhausted transient, got {other:?}"),
        }
        // A fault-free injector changes nothing about a healthy flush.
        let quiet = FaultInjector::new(FaultConfig::default());
        flush_file(
            &md,
            &chains,
            &lustre,
            &cfg,
            &HashSet::new(),
            None,
            Some(&quiet),
            1,
            size,
            "/pfs/f",
            None,
        )
        .unwrap();
    }

    /// Build a drain ledger covering `fid`'s records in `[0, upto)`, as
    /// if the background drain had copied them: a first full flush puts
    /// the bytes on `dest` and fixes the plan, then the ledger remembers
    /// the records.
    fn ledger_after_flush(
        md: &MetadataService,
        chains: &ChainSet,
        lustre: &RwLock<Lustre>,
        cfg: &UniviStorConfig,
        size: u64,
        upto: u64,
        dest: &str,
    ) -> DrainLedger {
        let receipt = flush_file(
            md,
            chains,
            lustre,
            cfg,
            &HashSet::new(),
            None,
            None,
            1,
            size,
            dest,
            None,
        )
        .unwrap();
        let (_, records) = md.lookup_range(1, 0, upto);
        DrainLedger {
            plan: receipt.plan,
            spans: records
                .into_iter()
                .filter(|(k, _)| k.offset < upto)
                .map(|(k, r)| (k.offset, r))
                .collect(),
        }
    }

    #[test]
    fn resume_skips_drained_spans_and_accounts_them() {
        let (md, chains, lustre, cfg) = setup();
        let size = populate(&md, &chains, 4);
        // Everything was drained ahead.
        let ledger = ledger_after_flush(&md, &chains, &lustre, &cfg, size, size, "/pfs/f");
        let m = JobMetrics::new();
        let r = flush_file(
            &md,
            &chains,
            &lustre,
            &cfg,
            &HashSet::new(),
            Some(&m),
            None,
            1,
            size,
            "/pfs/f",
            Some(&ledger),
        )
        .unwrap();
        assert_eq!(r.drained_ahead_bytes, size);
        assert_eq!(r.per_server_bytes.iter().sum::<u64>(), 0);
        assert_eq!(
            m.snapshot()
                .counter_total("univistor_tiering_catchup_skipped_bytes_total"),
            size
        );
        // The destination still reads back byte-identical.
        let pfs = lustre.read().unwrap();
        let whole = pfs.read("/pfs/f", 0, size, 999).unwrap();
        for s in 0..(size / 64) {
            assert!(
                whole
                    .slice(s * 64, 64)
                    .content_eq(&Payload::pattern(s * 64, 64)),
                "segment {s} corrupt after catch-up"
            );
        }
    }

    #[test]
    fn resume_with_partial_ledger_flushes_only_the_rest() {
        let (md, chains, lustre, cfg) = setup();
        let size = populate(&md, &chains, 4);
        // Only the first half was drained ahead.
        let ledger = ledger_after_flush(&md, &chains, &lustre, &cfg, size, size / 2, "/pfs/f");
        let r = flush_file(
            &md,
            &chains,
            &lustre,
            &cfg,
            &HashSet::new(),
            None,
            None,
            1,
            size,
            "/pfs/f",
            Some(&ledger),
        )
        .unwrap();
        assert_eq!(r.drained_ahead_bytes, size / 2);
        assert_eq!(r.per_server_bytes.iter().sum::<u64>(), size / 2);
        let whole = lustre.read().unwrap().read("/pfs/f", 0, size, 999).unwrap();
        for s in 0..(size / 64) {
            assert!(
                whole
                    .slice(s * 64, 64)
                    .content_eq(&Payload::pattern(s * 64, 64)),
                "segment {s} corrupt after partial catch-up"
            );
        }
    }

    #[test]
    fn resume_ignores_stale_ledger_entries() {
        let (md, chains, lustre, cfg) = setup();
        let size = populate(&md, &chains, 4);
        let mut ledger = ledger_after_flush(&md, &chains, &lustre, &cfg, size, size, "/pfs/f");
        // One entry no longer matches the live record (as after an
        // overwrite the invalidation hook missed): it must be re-flushed
        // from the cache, not trusted.
        let stale = ledger.spans.get_mut(&0).expect("span at 0");
        stale.len = 32;
        let r = flush_file(
            &md,
            &chains,
            &lustre,
            &cfg,
            &HashSet::new(),
            None,
            None,
            1,
            size,
            "/pfs/f",
            Some(&ledger),
        )
        .unwrap();
        assert_eq!(r.drained_ahead_bytes, size - 64);
        assert_eq!(r.per_server_bytes.iter().sum::<u64>(), 64);
    }

    #[test]
    fn drained_spans_survive_source_node_failure() {
        let (md, chains, lustre, cfg) = setup();
        let size = populate(&md, &chains, 2);
        // The drain copied everything while all nodes were healthy; then
        // node 0 (logical [0, 256), no replicas) died before close.
        let ledger = ledger_after_flush(&md, &chains, &lustre, &cfg, size, size, "/pfs/f");
        let failed: HashSet<usize> = [0].into_iter().collect();
        let r = flush_file(
            &md,
            &chains,
            &lustre,
            &cfg,
            &failed,
            None,
            None,
            1,
            size,
            "/pfs/f",
            Some(&ledger),
        )
        .unwrap();
        // Nothing is lost: the drained copies stand in for the dead node.
        assert_eq!(r.lost, FlushReport::default());
        assert_eq!(r.drained_ahead_bytes, size);
        let whole = lustre.read().unwrap().read("/pfs/f", 0, size, 999).unwrap();
        for s in 0..(size / 64) {
            assert!(
                whole
                    .slice(s * 64, 64)
                    .content_eq(&Payload::pattern(s * 64, 64)),
                "segment {s} corrupt after degraded catch-up"
            );
        }
    }

    #[test]
    fn resume_without_destination_falls_back_to_full_flush() {
        let (md, chains, lustre, cfg) = setup();
        let size = populate(&md, &chains, 2);
        let ledger = ledger_after_flush(&md, &chains, &lustre, &cfg, size, size, "/pfs/f");
        // The destination vanished (e.g. an external delete): the ledger
        // must be discarded, not trusted into a hole-ridden file.
        lustre.write().unwrap().delete("/pfs/f").unwrap();
        let r = flush_file(
            &md,
            &chains,
            &lustre,
            &cfg,
            &HashSet::new(),
            None,
            None,
            1,
            size,
            "/pfs/f",
            Some(&ledger),
        )
        .unwrap();
        assert_eq!(r.drained_ahead_bytes, 0);
        assert_eq!(r.per_server_bytes.iter().sum::<u64>(), size);
        assert_eq!(lustre.read().unwrap().file_size("/pfs/f").unwrap(), size);
    }

    #[test]
    fn empty_flush_rejected() {
        let (md, chains, lustre, cfg) = setup();
        assert!(flush_file(
            &md,
            &chains,
            &lustre,
            &cfg,
            &HashSet::new(),
            None,
            None,
            1,
            0,
            "/pfs/f",
            None
        )
        .is_err());
    }
}
