//! Server-side asynchronous flush (§II-A, §II-D).
//!
//! At file-close time the UniviStor servers collectively move the cached
//! data to the PFS for long-term persistence, overlapping the application's
//! next compute phase. The logical file is split into one contiguous range
//! per server; each server gathers its range's segments from wherever DHP
//! placed them (its node's DRAM logs, the shared burst buffer, …) and
//! writes them to Lustre with the striping chosen by
//! [`crate::striping::adaptive_plan`] (or the all-OST naive layout when
//! ADPT is disabled).
//!
//! The flush is *functional*: bytes land in OST objects and can be read
//! back from Lustre. The [`FlushReceipt`] captures everything the timing
//! plane needs: per-server and per-OST byte loads, which tier each byte
//! came from, stripe-synchronization fan-out, and lock revocations.

use crate::config::UniviStorConfig;
use crate::metadata::MetadataService;
use crate::metrics::JobMetrics;
use crate::placement::ChainSet;
use crate::striping::{adaptive_plan, naive_plan, StripePlan};
use crate::va::{Tier, VirtualAddr};
use std::collections::{HashMap, HashSet};
use std::sync::RwLock;
use univistor_pfs::Lustre;
use univistor_sim::{SimError, SimResult};

/// What one flush did.
#[derive(Debug, Clone)]
pub struct FlushReceipt {
    /// Destination path on the PFS.
    pub dest: String,
    /// Logical bytes flushed.
    pub file_size: u64,
    /// The striping decision.
    pub plan: StripePlan,
    /// Bytes written by each flushing server.
    pub per_server_bytes: Vec<u64>,
    /// Bytes received by each OST.
    pub per_ost_bytes: Vec<u64>,
    /// Bytes sourced from each tier (DRAM vs. BB vs. PFS-log).
    pub source_tier_bytes: Vec<(Tier, u64)>,
    /// Lustre lock revocations during the flush.
    pub lock_revocations: u64,
    /// Distinct OSTs each server contacted (sync overhead driver).
    pub osts_per_server: usize,
}

/// Flush every byte of `fid` (logical size `file_size`) to `dest` on
/// `lustre`, using the configuration's striping mode and server count.
/// Segments whose primary node is in `failed_nodes` are flushed from
/// their resilience replicas. A completed flush is accounted into
/// `metrics` (drained/per-server histograms, source tiers, revocations)
/// when a panel is given.
///
/// `lustre` is locked exclusively only around the individual
/// create/delete/write calls, so a long flush does not starve concurrent
/// `lustre_read`s; segment gathering takes shared chain/metadata locks.
#[allow(clippy::too_many_arguments)]
pub fn flush_file(
    metadata: &MetadataService,
    chains: &ChainSet,
    lustre: &RwLock<Lustre>,
    cfg: &UniviStorConfig,
    failed_nodes: &HashSet<usize>,
    metrics: Option<&JobMetrics>,
    fid: u64,
    file_size: u64,
    dest: &str,
) -> SimResult<FlushReceipt> {
    if file_size == 0 {
        return Err(SimError::InvalidFlow("flush of empty file".into()));
    }
    let servers = cfg.geometry.total_servers();
    let osts = lustre.read().expect("lustre poisoned").ost_count();
    let plan = if cfg.features.adaptive_striping {
        adaptive_plan(file_size, servers, osts, cfg.alpha, cfg.cal.max_stripe_size)
    } else {
        naive_plan(file_size, servers, osts, cfg.cal.default_stripe_size)
    };

    // (Re-)create the destination with the chosen layout.
    {
        let mut pfs = lustre.write().expect("lustre poisoned");
        if pfs.exists(dest) {
            pfs.delete(dest)?;
        }
        pfs.create(dest, plan.layout.clone())?;
    }

    let mut per_server_bytes = vec![0u64; servers];
    let mut per_ost_bytes = vec![0u64; osts];
    let mut source_tiers: HashMap<Tier, u64> = HashMap::new();
    let mut revocations = 0u64;

    for (server, &(start, end)) in plan.server_ranges.iter().enumerate() {
        if end <= start {
            continue;
        }
        let (_, records) = metadata.lookup_range(fid, start, end);
        for (key, rec) in records {
            let seg_end = key.offset + rec.len;
            let clip_lo = key.offset.max(start);
            let clip_hi = seg_end.min(end);
            if clip_hi <= clip_lo {
                continue;
            }
            let clip_len = clip_hi - clip_lo;
            let primary_node = cfg.geometry.node_of_rank(rec.client.rank as usize);
            let (source, base_va) = if failed_nodes.contains(&primary_node) {
                rec.replica.ok_or_else(|| {
                    SimError::InvalidConfig(format!(
                        "cannot flush offset {}: node {primary_node} failed, no replica",
                        key.offset
                    ))
                })?
            } else {
                (rec.client, rec.va)
            };
            let va = VirtualAddr(base_va.0 + (clip_lo - key.offset));
            let (payload, tier) = chains.read_at(source, va, clip_len)?;
            *source_tiers.entry(tier).or_insert(0) += clip_len;
            let receipt = lustre.write().expect("lustre poisoned").write(
                dest,
                clip_lo,
                payload,
                server as u64,
            )?;
            revocations += receipt.lock_revocations;
            for (ost, bytes) in receipt.ost_bytes() {
                per_ost_bytes[ost] += bytes;
            }
            per_server_bytes[server] += clip_len;
        }
    }

    let flushed: u64 = per_server_bytes.iter().sum();
    if flushed != file_size {
        return Err(SimError::InvalidFlow(format!(
            "flush moved {flushed} of {file_size} bytes — holes in '{dest}'?"
        )));
    }

    let mut source_tier_bytes: Vec<(Tier, u64)> = source_tiers.into_iter().collect();
    source_tier_bytes.sort_by_key(|(t, _)| *t);
    let receipt = FlushReceipt {
        dest: dest.to_string(),
        file_size,
        osts_per_server: plan.osts_per_server,
        plan,
        per_server_bytes,
        per_ost_bytes,
        source_tier_bytes,
        lock_revocations: revocations,
    };
    if let Some(m) = metrics {
        m.record_flush(&receipt);
    }
    Ok(receipt)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metadata::{ClientId, SegKey, SegmentRecord};
    use crate::placement::ProcChain;
    use univistor_sim::Payload;

    /// 2 nodes × 2 clients; 128 B DRAM + 128 B BB per-proc logs, 64 B
    /// chunks/segments; 4 servers.
    fn setup() -> (MetadataService, ChainSet, RwLock<Lustre>, UniviStorConfig) {
        let mut cfg = UniviStorConfig::test_small(2, 2);
        cfg.geometry.servers_per_node = 2;
        let metadata = MetadataService::new(256, 4, 2);
        let chains: ChainSet = (0..4u32)
            .map(|rank| {
                (
                    ClientId::new(0, rank),
                    ProcChain::new(
                        vec![
                            (Tier::Dram, 128),
                            (Tier::SharedBurstBuffer, 128),
                            (Tier::Pfs, u64::MAX),
                        ],
                        64,
                    )
                    .unwrap(),
                )
            })
            .collect();
        (metadata, chains, RwLock::new(Lustre::new(8)), cfg)
    }

    fn populate(metadata: &MetadataService, chains: &ChainSet, segs_per_client: u64) -> u64 {
        for rank in 0..4u32 {
            let client = ClientId::new(0, rank);
            for i in 0..segs_per_client {
                let logical = (rank as u64 * segs_per_client + i) * 64;
                let placed = chains
                    .append(client, Payload::pattern(logical, 64))
                    .unwrap();
                metadata.insert(
                    SegKey {
                        fid: 1,
                        offset: logical,
                    },
                    SegmentRecord::new(client, placed.va, 64),
                    (rank / 2) as usize,
                );
            }
        }
        4 * segs_per_client * 64
    }

    #[test]
    fn flushed_file_reads_back_from_lustre() {
        let (md, chains, lustre, cfg) = setup();
        let size = populate(&md, &chains, 4);
        let receipt = flush_file(
            &md,
            &chains,
            &lustre,
            &cfg,
            &HashSet::new(),
            None,
            1,
            size,
            "/pfs/f",
        )
        .unwrap();
        assert_eq!(receipt.file_size, size);
        let lustre = lustre.read().unwrap();
        assert_eq!(lustre.file_size("/pfs/f").unwrap(), size);
        let whole = lustre.read("/pfs/f", 0, size, 999).unwrap();
        for s in 0..(size / 64) {
            assert!(
                whole
                    .slice(s * 64, 64)
                    .content_eq(&Payload::pattern(s * 64, 64)),
                "segment {s} corrupt on PFS"
            );
        }
    }

    #[test]
    fn receipt_accounts_every_byte() {
        let (md, chains, lustre, cfg) = setup();
        let size = populate(&md, &chains, 4);
        let m = JobMetrics::new();
        let r = flush_file(
            &md,
            &chains,
            &lustre,
            &cfg,
            &HashSet::new(),
            Some(&m),
            1,
            size,
            "/pfs/f",
        )
        .unwrap();
        assert_eq!(r.per_server_bytes.iter().sum::<u64>(), size);
        assert_eq!(r.per_ost_bytes.iter().sum::<u64>(), size);
        let by_tier: u64 = r.source_tier_bytes.iter().map(|(_, b)| b).sum();
        assert_eq!(by_tier, size);
        // Data spilled across DRAM and BB: both tiers must appear.
        let tiers: Vec<Tier> = r.source_tier_bytes.iter().map(|(t, _)| *t).collect();
        assert!(tiers.contains(&Tier::Dram));
        assert!(tiers.contains(&Tier::SharedBurstBuffer));
        // The panel agrees with the receipt.
        let snap = m.snapshot();
        assert_eq!(
            snap.counter_total("univistor_flush_source_bytes_total"),
            size
        );
        assert_eq!(
            snap.histogram("univistor_flush_drained_bytes", &[])
                .expect("drained histogram")
                .sum,
            size as f64
        );
    }

    #[test]
    fn adaptive_and_naive_both_produce_correct_files() {
        for adaptive in [true, false] {
            let (md, chains, lustre, mut cfg) = setup();
            cfg.features.adaptive_striping = adaptive;
            let size = populate(&md, &chains, 2);
            let r = flush_file(
                &md,
                &chains,
                &lustre,
                &cfg,
                &HashSet::new(),
                None,
                1,
                size,
                "/pfs/f",
            )
            .unwrap();
            let whole = lustre.read().unwrap().read("/pfs/f", 0, size, 999).unwrap();
            assert_eq!(whole.len(), size, "adaptive={adaptive}");
            assert_eq!(r.file_size, size);
        }
    }

    #[test]
    fn reflush_overwrites_destination() {
        let (md, chains, lustre, cfg) = setup();
        let size = populate(&md, &chains, 2);
        flush_file(
            &md,
            &chains,
            &lustre,
            &cfg,
            &HashSet::new(),
            None,
            1,
            size,
            "/pfs/f",
        )
        .unwrap();
        // Flush again (e.g. the file was re-opened and appended — here
        // identical): destination is recreated, not corrupted.
        flush_file(
            &md,
            &chains,
            &lustre,
            &cfg,
            &HashSet::new(),
            None,
            1,
            size,
            "/pfs/f",
        )
        .unwrap();
        assert_eq!(lustre.read().unwrap().file_size("/pfs/f").unwrap(), size);
    }

    #[test]
    fn flush_with_holes_fails() {
        let (md, chains, lustre, cfg) = setup();
        let size = populate(&md, &chains, 2);
        // Claim the file is bigger than what was written.
        let err = flush_file(
            &md,
            &chains,
            &lustre,
            &cfg,
            &HashSet::new(),
            None,
            1,
            size + 64,
            "/pfs/f",
        )
        .unwrap_err();
        assert!(matches!(err, SimError::InvalidFlow(_)));
    }

    #[test]
    fn empty_flush_rejected() {
        let (md, chains, lustre, cfg) = setup();
        assert!(flush_file(
            &md,
            &chains,
            &lustre,
            &cfg,
            &HashSet::new(),
            None,
            1,
            0,
            "/pfs/f"
        )
        .is_err());
    }
}
