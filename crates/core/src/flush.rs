//! Server-side asynchronous flush (§II-A, §II-D).
//!
//! At file-close time the UniviStor servers collectively move the cached
//! data to the PFS for long-term persistence, overlapping the application's
//! next compute phase. The logical file is split into one contiguous range
//! per server; each server gathers its range's segments from wherever DHP
//! placed them (its node's DRAM logs, the shared burst buffer, …) and
//! writes them to Lustre with the striping chosen by
//! [`crate::striping::adaptive_plan`] (or the all-OST naive layout when
//! ADPT is disabled).
//!
//! Two engines implement the drain, selected by
//! [`FlushPipeline`](crate::config::FlushPipeline):
//!
//! * **`Sequential`** — the reference engine: one loop over
//!   `plan.server_ranges`, one chain read and one Lustre write per clipped
//!   span. Kept verbatim for differential tests.
//! * **`Parallel`** (default) — the pipelined engine: each server range is
//!   gathered by its own worker (scoped threads over a shared cursor), a
//!   single writer stage drains gathered ranges through a reorder buffer
//!   (so Lustre writes stay server-major and offset-ascending — the order
//!   that makes lock-revocation counts engine-independent), adjacent spans
//!   merge into coalesced object writes, and same-source spans within a
//!   range are fetched in one chain round-trip. Gathering takes no core
//!   checkout: a generation fence around each pass redoes the flush if a
//!   writer mutated the file mid-pass (write-overlapped catch-up).
//!
//! Both engines share the stripe writer ([`write_stripes`]) and produce
//! byte-identical PFS contents and identical semantic receipts (bytes per
//! server/OST/tier, loss ledger, revocations); they differ only in the
//! operation counters (`ost_writes`, `write_calls`, `gather_round_trips`)
//! that measure the coalescing and batching wins.
//!
//! The flush is *functional*: bytes land in OST objects and can be read
//! back from Lustre. The [`FlushReceipt`] captures everything the timing
//! plane needs: per-server and per-OST byte loads, which tier each byte
//! came from, stripe-synchronization fan-out, and lock revocations.

use crate::config::{FlushPipeline, UniviStorConfig};
use crate::fault::{with_retries, FaultInjector};
use crate::metadata::{ClientId, MetadataService, SegKey, SegmentRecord};
use crate::metrics::JobMetrics;
use crate::placement::ChainSet;
use crate::striping::{adaptive_plan, naive_plan, StripePlan};
use crate::tiering::DrainLedger;
use crate::va::{Tier, VirtualAddr};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, RwLock};
use univistor_pfs::Lustre;
use univistor_sim::{Payload, SimError, SimResult};

/// What one flush did.
#[derive(Debug, Clone)]
pub struct FlushReceipt {
    /// Destination path on the PFS.
    pub dest: String,
    /// Logical bytes flushed.
    pub file_size: u64,
    /// The striping decision.
    pub plan: StripePlan,
    /// Bytes written by each flushing server.
    pub per_server_bytes: Vec<u64>,
    /// Bytes received by each OST.
    pub per_ost_bytes: Vec<u64>,
    /// Bytes sourced from each tier (DRAM vs. BB vs. PFS-log).
    pub source_tier_bytes: Vec<(Tier, u64)>,
    /// Lustre lock revocations during the flush.
    pub lock_revocations: u64,
    /// Distinct OSTs each server contacted (sync overhead driver).
    pub osts_per_server: usize,
    /// Spans this flush could not move because primary and replica were
    /// both on failed nodes (degraded-mode accounting).
    pub lost: FlushReport,
    /// Bytes this flush skipped because the background drain had already
    /// copied them (and their records were still current) — the catch-up
    /// saving. Always 0 without a resume ledger.
    pub drained_ahead_bytes: u64,
    /// OST object writes issued: one per stripe piece after coalescing.
    /// The parallel engine's coalesced runs touch each OST object once
    /// per run; the sequential engine once per span piece.
    pub ost_writes: u64,
    /// Lustre object-write calls issued: one per coalesced run under the
    /// parallel engine, one per span under the sequential engine.
    /// `spans / write_calls` is the coalescing ratio.
    pub write_calls: u64,
    /// Clipped spans drained (a record clipped by several server ranges
    /// counts once per range). Engine-independent.
    pub spans: u64,
    /// Chain read round-trips: one per same-source span run under the
    /// parallel engine, one per span under the sequential engine.
    pub gather_round_trips: u64,
    /// Generation-invalidated redo passes the write-overlapped drain ran
    /// because a writer mutated the file mid-flush. Always 0 under the
    /// sequential engine or when writers are quiescent.
    pub catchup_passes: u64,
}

/// Degraded-mode accounting of one flush: the spans skipped because no
/// healthy copy existed. A fully healthy flush reports all zeros.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlushReport {
    /// Clipped spans skipped (a record clipped by several server ranges
    /// counts once per range).
    pub lost_segments: u64,
    /// Bytes skipped.
    pub lost_bytes: u64,
}

/// Where the flush engines get records and bytes from. Implemented by the
/// locked core's metadata + chains pair and by the partitioned runtime
/// (which routes fetches to the owning partition workers), so both
/// runtimes share one flush engine.
pub(crate) trait FlushSource: Sync {
    /// All records of `fid` overlapping `[lo, hi)`, offset-ascending.
    fn records(&self, fid: u64, lo: u64, hi: u64) -> Vec<(SegKey, SegmentRecord)>;
    /// Read every `(va, len)` request from `client`'s chain, results in
    /// request order. One call is one gather round-trip.
    fn read_spans(
        &self,
        client: ClientId,
        requests: &[(VirtualAddr, u64)],
    ) -> SimResult<Vec<(Payload, Tier)>>;
    /// The fid's current mutation generation — the catch-up fence.
    fn generation(&self, fid: u64) -> u64;
}

/// The locked core's view: direct shared-lock reads of the metadata
/// service and chain set.
pub(crate) struct CoreFlushSource<'a> {
    pub metadata: &'a MetadataService,
    pub chains: &'a ChainSet,
}

impl FlushSource for CoreFlushSource<'_> {
    fn records(&self, fid: u64, lo: u64, hi: u64) -> Vec<(SegKey, SegmentRecord)> {
        self.metadata.lookup_range(fid, lo, hi).1
    }

    fn read_spans(
        &self,
        client: ClientId,
        requests: &[(VirtualAddr, u64)],
    ) -> SimResult<Vec<(Payload, Tier)>> {
        self.chains.read_at_many(client, requests)
    }

    fn generation(&self, fid: u64) -> u64 {
        self.metadata.generation(fid)
    }
}

/// What one [`write_stripes`] call did — absorbed into the engine's
/// accumulator.
#[derive(Debug, Default)]
pub(crate) struct StripeWrite {
    pub revocations: u64,
    pub ost_writes: u64,
    pub write_calls: u64,
    pub per_server: Vec<(usize, u64)>,
    pub per_ost: Vec<(usize, u64)>,
}

/// Write `payload` at logical offset `lo` of `dest`, splitting it along
/// `plan`'s server ranges so each piece carries its owning server's writer
/// id (the last range absorbs growth past the plan, mirroring
/// [`StripePlan::clip_to_servers`]). The shared write stage of both flush
/// engines and the background drain.
pub(crate) fn write_stripes(
    lustre: &RwLock<Lustre>,
    dest: &str,
    plan: &StripePlan,
    lo: u64,
    payload: Payload,
) -> SimResult<StripeWrite> {
    let hi = lo + payload.len();
    let clips: Vec<(usize, u64, u64)> = plan.clip_to_servers(lo, hi).collect();
    let mut out = StripeWrite::default();
    let single = clips.len() == 1;
    let mut payload = Some(payload);
    for (server, clip_lo, clip_hi) in clips {
        let part = if single {
            payload.take().expect("single clip consumed once")
        } else {
            payload
                .as_ref()
                .expect("multi-clip payload retained")
                .slice(clip_lo - lo, clip_hi - clip_lo)
        };
        let receipt =
            lustre
                .write()
                .expect("lustre poisoned")
                .write(dest, clip_lo, part, server as u64)?;
        out.revocations += receipt.lock_revocations;
        out.ost_writes += receipt.pieces.len() as u64;
        out.write_calls += 1;
        out.per_server.push((server, clip_hi - clip_lo));
        out.per_ost.extend(receipt.ost_bytes());
    }
    Ok(out)
}

/// Per-pass accumulator shared by both engines; becomes the receipt.
struct FlushAcc {
    per_server_bytes: Vec<u64>,
    per_ost_bytes: Vec<u64>,
    source_tiers: HashMap<Tier, u64>,
    revocations: u64,
    lost: FlushReport,
    drained_ahead: u64,
    ost_writes: u64,
    write_calls: u64,
    spans: u64,
    gather_round_trips: u64,
}

impl FlushAcc {
    fn new(servers: usize, osts: usize) -> Self {
        FlushAcc {
            per_server_bytes: vec![0; servers],
            per_ost_bytes: vec![0; osts],
            source_tiers: HashMap::new(),
            revocations: 0,
            lost: FlushReport::default(),
            drained_ahead: 0,
            ost_writes: 0,
            write_calls: 0,
            spans: 0,
            gather_round_trips: 0,
        }
    }

    fn absorb_write(&mut self, w: StripeWrite) {
        self.revocations += w.revocations;
        self.ost_writes += w.ost_writes;
        self.write_calls += w.write_calls;
        for (server, bytes) in w.per_server {
            self.per_server_bytes[server] += bytes;
        }
        for (ost, bytes) in w.per_ost {
            self.per_ost_bytes[ost] += bytes;
        }
    }
}

/// Prefer the primary; fall back to a replica on a healthy node; with
/// neither, the span is lost.
fn healthy_source(
    cfg: &UniviStorConfig,
    failed_nodes: &HashSet<usize>,
    rec: &SegmentRecord,
) -> Option<(ClientId, VirtualAddr)> {
    let primary_node = cfg.geometry.node_of_rank(rec.client.rank as usize);
    if !failed_nodes.contains(&primary_node) {
        Some((rec.client, rec.va))
    } else {
        rec.replica
            .filter(|(rc, _)| !failed_nodes.contains(&cfg.geometry.node_of_rank(rc.rank as usize)))
    }
}

/// The span both engines request for one clipped record: stamped records
/// fetch the *whole* record from its base VA (the sequential checksum can
/// only verify the full span), unstamped ones the clip alone.
fn gather_span(
    rec: &SegmentRecord,
    base_va: VirtualAddr,
    key_offset: u64,
    clip_lo: u64,
    clip_len: u64,
) -> (VirtualAddr, u64) {
    match rec.checksum {
        Some(_) => (base_va, rec.len),
        None => (VirtualAddr(base_va.0 + (clip_lo - key_offset)), clip_len),
    }
}

/// Finish one gathered span: verify a stamped record's full payload
/// against its write-commit stamp and clip the requested window back out;
/// on a verify failure fall back to the record's other healthy copy. No
/// clean copy is a typed [`SimError::Integrity`] — the flush never
/// persists wrong bytes, and the lost ledger stays reserved for node
/// failures (a corrupt-but-present copy is the scrubber's job, not a
/// silent skip).
#[allow(clippy::too_many_arguments)]
fn verify_gathered(
    source: &dyn FlushSource,
    cfg: &UniviStorConfig,
    failed_nodes: &HashSet<usize>,
    metrics: Option<&JobMetrics>,
    rec: &SegmentRecord,
    chosen: (ClientId, VirtualAddr),
    key_offset: u64,
    clip_lo: u64,
    clip_len: u64,
    payload: Payload,
    tier: Tier,
    round_trips: &mut u64,
) -> SimResult<(Payload, Tier)> {
    let Some(sum) = rec.checksum else {
        return Ok((payload, tier));
    };
    let clip_off = clip_lo - key_offset;
    let whole_record = clip_off == 0 && clip_len == rec.len;
    if payload.content_checksum() == sum {
        // Steady path: skip the clip when the gather spans the record.
        return Ok(if whole_record {
            (payload, tier)
        } else {
            (payload.slice(clip_off, clip_len), tier)
        });
    }
    if let Some(m) = metrics {
        m.record_verify_failure("flush");
    }
    // The record's other copy, when one exists on a healthy node.
    let alt = if chosen == (rec.client, rec.va) {
        rec.replica
            .filter(|(rc, _)| !failed_nodes.contains(&cfg.geometry.node_of_rank(rc.rank as usize)))
    } else {
        let primary_node = cfg.geometry.node_of_rank(rec.client.rank as usize);
        (!failed_nodes.contains(&primary_node)).then_some((rec.client, rec.va))
    };
    if let Some((alt_client, alt_va)) = alt {
        let mut got = with_retries(&cfg.retry, metrics, || {
            source.read_spans(alt_client, &[(alt_va, rec.len)])
        })?;
        *round_trips += 1;
        let (alt_payload, alt_tier) = got.pop().expect("one span requested");
        if alt_payload.content_checksum() == sum {
            return Ok(if whole_record {
                (alt_payload, alt_tier)
            } else {
                (alt_payload.slice(clip_off, clip_len), alt_tier)
            });
        }
        if let Some(m) = metrics {
            m.record_verify_failure("flush");
        }
    }
    Err(SimError::Integrity {
        site: "flush_gather".into(),
        offset: clip_lo,
        len: clip_len,
    })
}

/// Flush every byte of `fid` (logical size `file_size`) to `dest` on
/// `lustre`, using the configuration's striping mode, server count, and
/// flush engine (`cfg.flush_pipeline`). Segments whose primary node is in
/// `failed_nodes` are flushed from their resilience replicas. A completed
/// flush is accounted into `metrics` (drained/per-server histograms,
/// source tiers, revocations, coalescing counters) when a panel is given.
///
/// The flush **degrades gracefully**: a span whose primary *and* replica
/// (or a replica-less span whose primary) sit on failed nodes is skipped
/// rather than aborting the pass — every healthy byte still lands on the
/// PFS, and the skipped spans are reported in the receipt's
/// [`FlushReport`] (feeding `univistor_flush_skipped_lost_bytes_total`).
/// A shortfall *not* explained by lost spans (a genuine hole) is still an
/// error. Transient faults from `injector` on the lookup and
/// chain-read steps are retried under `cfg.retry`.
///
/// `lustre` is locked exclusively only around the individual
/// create/delete/write calls, so a long flush does not starve concurrent
/// `lustre_read`s; segment gathering takes shared chain/metadata locks.
///
/// `resume` is the background drain's ledger for this file (see
/// [`crate::tiering`]): spans whose ledger entry still matches the live
/// record were already copied to `dest` and are skipped — the catch-up
/// path that makes close-time flush cheap under a running daemon. The
/// destination is then *not* recreated (it holds the drained bytes) and
/// the ledger's striping plan is reused, with its last server range
/// extended to cover growth since the plan was fixed.
#[allow(clippy::too_many_arguments)]
pub fn flush_file(
    metadata: &MetadataService,
    chains: &ChainSet,
    lustre: &RwLock<Lustre>,
    cfg: &UniviStorConfig,
    failed_nodes: &HashSet<usize>,
    metrics: Option<&JobMetrics>,
    injector: Option<&FaultInjector>,
    fid: u64,
    file_size: u64,
    dest: &str,
    resume: Option<&DrainLedger>,
) -> SimResult<FlushReceipt> {
    let source = CoreFlushSource { metadata, chains };
    flush_with_source(
        &source,
        lustre,
        cfg,
        failed_nodes,
        metrics,
        injector,
        fid,
        file_size,
        dest,
        resume,
    )
}

/// [`flush_file`] generalized over a [`FlushSource`] — the entry point the
/// partitioned runtime uses to flush without a whole-core checkout.
#[allow(clippy::too_many_arguments)]
pub(crate) fn flush_with_source(
    source: &dyn FlushSource,
    lustre: &RwLock<Lustre>,
    cfg: &UniviStorConfig,
    failed_nodes: &HashSet<usize>,
    metrics: Option<&JobMetrics>,
    injector: Option<&FaultInjector>,
    fid: u64,
    file_size: u64,
    dest: &str,
    resume: Option<&DrainLedger>,
) -> SimResult<FlushReceipt> {
    if file_size == 0 {
        return Err(SimError::InvalidFlow("flush of empty file".into()));
    }
    let servers = cfg.geometry.total_servers();
    let osts = lustre.read().expect("lustre poisoned").ost_count();
    // A ledger is only trustworthy while the destination it drained into
    // still exists.
    let resume = resume.filter(|_| lustre.read().expect("lustre poisoned").exists(dest));
    let plan = match resume {
        Some(ledger) => {
            let mut plan = ledger.plan.clone();
            // The file may have grown since the drain fixed the plan; the
            // layout's last range is open-ended, so only the accounting
            // ranges need stretching.
            if let Some(last) = plan.server_ranges.last_mut() {
                last.1 = last.1.max(file_size);
            }
            plan
        }
        None => {
            if cfg.features.adaptive_striping {
                adaptive_plan(file_size, servers, osts, cfg.alpha, cfg.cal.max_stripe_size)
            } else {
                naive_plan(file_size, servers, osts, cfg.cal.default_stripe_size)
            }
        }
    };

    // (Re-)create the destination with the chosen layout — unless a
    // resume ledger vouches for the existing file's drained contents. The
    // destination is created once: catch-up redo passes rewrite spans in
    // place rather than recreating it (drained bytes must survive).
    if resume.is_none() {
        let mut pfs = lustre.write().expect("lustre poisoned");
        if pfs.exists(dest) {
            pfs.delete(dest)?;
        }
        pfs.create(dest, plan.layout.clone())?;
    }

    let (acc, catchup_passes) = match cfg.flush_pipeline {
        FlushPipeline::Sequential => (
            sequential_pass(
                source,
                lustre,
                cfg,
                failed_nodes,
                metrics,
                injector,
                fid,
                &plan,
                dest,
                resume,
                servers,
                osts,
            )?,
            0,
        ),
        FlushPipeline::Parallel => parallel_drain(
            source,
            lustre,
            cfg,
            failed_nodes,
            metrics,
            injector,
            fid,
            &plan,
            dest,
            resume,
            servers,
            osts,
        )?,
    };

    let flushed: u64 = acc.per_server_bytes.iter().sum();
    if flushed + acc.lost.lost_bytes + acc.drained_ahead != file_size {
        return Err(SimError::InvalidFlow(format!(
            "flush moved {flushed} of {file_size} bytes ({} lost to failures, \
             {} drained ahead) — holes in '{dest}'?",
            acc.lost.lost_bytes, acc.drained_ahead
        )));
    }

    let mut source_tier_bytes: Vec<(Tier, u64)> = acc.source_tiers.into_iter().collect();
    source_tier_bytes.sort_by_key(|(t, _)| *t);
    let receipt = FlushReceipt {
        dest: dest.to_string(),
        file_size,
        osts_per_server: plan.osts_per_server,
        plan,
        per_server_bytes: acc.per_server_bytes,
        per_ost_bytes: acc.per_ost_bytes,
        source_tier_bytes,
        lock_revocations: acc.revocations,
        lost: acc.lost,
        drained_ahead_bytes: acc.drained_ahead,
        ost_writes: acc.ost_writes,
        write_calls: acc.write_calls,
        spans: acc.spans,
        gather_round_trips: acc.gather_round_trips,
        catchup_passes,
    };
    if let Some(m) = metrics {
        m.record_flush(&receipt);
    }
    Ok(receipt)
}

/// The reference engine: one loop over the server ranges, one chain read
/// and one stripe write per clipped span. Kept byte-for-byte equivalent to
/// the pre-pipelined flush for differential testing.
#[allow(clippy::too_many_arguments)]
fn sequential_pass(
    source: &dyn FlushSource,
    lustre: &RwLock<Lustre>,
    cfg: &UniviStorConfig,
    failed_nodes: &HashSet<usize>,
    metrics: Option<&JobMetrics>,
    injector: Option<&FaultInjector>,
    fid: u64,
    plan: &StripePlan,
    dest: &str,
    resume: Option<&DrainLedger>,
    servers: usize,
    osts: usize,
) -> SimResult<FlushAcc> {
    let mut acc = FlushAcc::new(servers, osts);
    for &(start, end) in plan.server_ranges.iter() {
        if end <= start {
            continue;
        }
        // One instrumented metadata fetch per server range; transient
        // faults are absorbed by the retry budget.
        if let Some(inj) = injector {
            with_retries(&cfg.retry, metrics, || inj.inject("flush_lookup", None))?;
        }
        for (key, rec) in source.records(fid, start, end) {
            let seg_end = key.offset + rec.len;
            let clip_lo = key.offset.max(start);
            let clip_hi = seg_end.min(end);
            if clip_hi <= clip_lo {
                continue;
            }
            let clip_len = clip_hi - clip_lo;
            // Catch-up: the drain already copied this exact record's
            // bytes to `dest`. Checked before the health split, so a
            // drained span survives even when its source node has since
            // failed.
            if let Some(ledger) = resume {
                if ledger.spans.get(&key.offset) == Some(&rec) {
                    acc.drained_ahead += clip_len;
                    continue;
                }
            }
            let Some((client, base_va)) = healthy_source(cfg, failed_nodes, &rec) else {
                acc.lost.lost_segments += 1;
                acc.lost.lost_bytes += clip_len;
                continue;
            };
            let request = gather_span(&rec, base_va, key.offset, clip_lo, clip_len);
            let mut got = with_retries(&cfg.retry, metrics, || {
                source.read_spans(client, &[request])
            })?;
            let (payload, tier) = got.pop().expect("one span requested");
            acc.spans += 1;
            acc.gather_round_trips += 1;
            let (payload, tier) = verify_gathered(
                source,
                cfg,
                failed_nodes,
                metrics,
                &rec,
                (client, base_va),
                key.offset,
                clip_lo,
                clip_len,
                payload,
                tier,
                &mut acc.gather_round_trips,
            )?;
            *acc.source_tiers.entry(tier).or_insert(0) += clip_len;
            let w = write_stripes(lustre, dest, plan, clip_lo, payload)?;
            acc.absorb_write(w);
        }
    }
    Ok(acc)
}

/// The parallel engine's catch-up fence: redo the whole pass whenever the
/// fid's mutation generation moved while the pass ran without a checkout.
/// A pass error under an *unchanged* generation is real and propagates; a
/// pass (error or not) under a changed generation may have read torn state
/// and is discarded. Terminates once writers quiesce — close-time flush
/// holds the fid's tiering gate, so only foreground writers race.
#[allow(clippy::too_many_arguments)]
fn parallel_drain(
    source: &dyn FlushSource,
    lustre: &RwLock<Lustre>,
    cfg: &UniviStorConfig,
    failed_nodes: &HashSet<usize>,
    metrics: Option<&JobMetrics>,
    injector: Option<&FaultInjector>,
    fid: u64,
    plan: &StripePlan,
    dest: &str,
    resume: Option<&DrainLedger>,
    servers: usize,
    osts: usize,
) -> SimResult<(FlushAcc, u64)> {
    let mut catchup_passes = 0u64;
    loop {
        let gen0 = source.generation(fid);
        let pass = parallel_pass(
            source,
            lustre,
            cfg,
            failed_nodes,
            metrics,
            injector,
            fid,
            plan,
            dest,
            resume,
            servers,
            osts,
        );
        if source.generation(fid) == gen0 {
            return pass.map(|acc| (acc, catchup_passes));
        }
        catchup_passes += 1;
    }
}

/// One gathered server range, queued from a gather worker to the writer
/// stage. Span outcomes are in offset order within the range.
struct RangeGather {
    spans: Vec<SpanOutcome>,
    gather_round_trips: u64,
}

enum SpanOutcome {
    /// Already on `dest` via the background drain.
    Drained { len: u64 },
    /// No healthy copy anywhere.
    Lost { len: u64 },
    /// Gathered bytes ready for the writer stage.
    Data {
        clip_lo: u64,
        len: u64,
        payload: Payload,
        tier: Tier,
    },
}

/// The pipelined engine: per-range gather workers feed a single writer
/// stage through a bounded queue; the writer reorders completions back to
/// range order so the Lustre write sequence (and thus the revocation
/// count) is identical to the sequential engine's, then coalesces
/// adjacent spans into single object writes.
#[allow(clippy::too_many_arguments)]
fn parallel_pass(
    source: &dyn FlushSource,
    lustre: &RwLock<Lustre>,
    cfg: &UniviStorConfig,
    failed_nodes: &HashSet<usize>,
    metrics: Option<&JobMetrics>,
    injector: Option<&FaultInjector>,
    fid: u64,
    plan: &StripePlan,
    dest: &str,
    resume: Option<&DrainLedger>,
    servers: usize,
    osts: usize,
) -> SimResult<FlushAcc> {
    let mut acc = FlushAcc::new(servers, osts);
    let ranges: Vec<(u64, u64)> = plan
        .server_ranges
        .iter()
        .copied()
        .filter(|&(start, end)| end > start)
        .collect();
    if ranges.is_empty() {
        return Ok(acc);
    }
    // One instrumented lookup per non-empty range, drawn up front in
    // range order so the injector sees the same flush_lookup count as the
    // sequential engine (draw *positions* may differ — accepted).
    if let Some(inj) = injector {
        for _ in &ranges {
            with_retries(&cfg.retry, metrics, || inj.inject("flush_lookup", None))?;
        }
    }
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let workers = ranges.len().min(cpus.max(1));
    let cursor = AtomicUsize::new(0);
    let (tx, rx) = mpsc::sync_channel::<(usize, SimResult<RangeGather>)>(workers * 2);
    let mut failed_err: Option<SimError> = None;
    std::thread::scope(|s| {
        for _ in 0..workers {
            let tx = tx.clone();
            let cursor = &cursor;
            let ranges = &ranges;
            s.spawn(move || loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(&(start, end)) = ranges.get(i) else {
                    break;
                };
                let gathered =
                    gather_range(source, cfg, failed_nodes, metrics, fid, resume, start, end);
                if tx.send((i, gathered)).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        // Writer stage: a reorder buffer restores range order.
        let mut pending: BTreeMap<usize, SimResult<RangeGather>> = BTreeMap::new();
        let mut next = 0usize;
        for (i, gathered) in rx {
            pending.insert(i, gathered);
            while let Some(g) = pending.remove(&next) {
                next += 1;
                if failed_err.is_none() {
                    if let Err(e) = g.and_then(|g| write_range(&mut acc, lustre, dest, plan, g)) {
                        // Stop handing out new ranges; drain what's in
                        // flight so the workers exit cleanly.
                        cursor.store(ranges.len(), Ordering::Relaxed);
                        failed_err = Some(e);
                    }
                }
            }
        }
    });
    match failed_err {
        Some(e) => Err(e),
        None => Ok(acc),
    }
}

/// Resolve and fetch one server range. Maximal same-source span runs are
/// fetched in a single chain round-trip (the batching win); resolution
/// (clip, ledger catch-up, health split) matches the sequential engine
/// span for span.
#[allow(clippy::too_many_arguments)]
fn gather_range(
    source: &dyn FlushSource,
    cfg: &UniviStorConfig,
    failed_nodes: &HashSet<usize>,
    metrics: Option<&JobMetrics>,
    fid: u64,
    resume: Option<&DrainLedger>,
    start: u64,
    end: u64,
) -> SimResult<RangeGather> {
    #[derive(Clone, Copy)]
    enum Resolved {
        Drained(u64),
        Lost(u64),
        Fetch {
            clip_lo: u64,
            len: u64,
            client: ClientId,
            base_va: VirtualAddr,
            key_offset: u64,
            rec: SegmentRecord,
        },
    }
    let records = source.records(fid, start, end);
    let mut resolved = Vec::with_capacity(records.len());
    for (key, rec) in records {
        let seg_end = key.offset + rec.len;
        let clip_lo = key.offset.max(start);
        let clip_hi = seg_end.min(end);
        if clip_hi <= clip_lo {
            continue;
        }
        let clip_len = clip_hi - clip_lo;
        if let Some(ledger) = resume {
            if ledger.spans.get(&key.offset) == Some(&rec) {
                resolved.push(Resolved::Drained(clip_len));
                continue;
            }
        }
        match healthy_source(cfg, failed_nodes, &rec) {
            None => resolved.push(Resolved::Lost(clip_len)),
            Some((client, base_va)) => resolved.push(Resolved::Fetch {
                clip_lo,
                len: clip_len,
                client,
                base_va,
                key_offset: key.offset,
                rec,
            }),
        }
    }
    let mut spans = Vec::with_capacity(resolved.len());
    let mut round_trips = 0u64;
    let mut requests: Vec<(VirtualAddr, u64)> = Vec::new();
    let mut i = 0;
    while i < resolved.len() {
        match resolved[i] {
            Resolved::Drained(len) => {
                spans.push(SpanOutcome::Drained { len });
                i += 1;
            }
            Resolved::Lost(len) => {
                spans.push(SpanOutcome::Lost { len });
                i += 1;
            }
            Resolved::Fetch { client, .. } => {
                let run_start = i;
                requests.clear();
                while let Some(&Resolved::Fetch {
                    client: c,
                    base_va,
                    key_offset,
                    clip_lo,
                    len,
                    ref rec,
                }) = resolved.get(i)
                {
                    if c != client {
                        break;
                    }
                    requests.push(gather_span(rec, base_va, key_offset, clip_lo, len));
                    i += 1;
                }
                let results =
                    with_retries(&cfg.retry, metrics, || source.read_spans(client, &requests))?;
                round_trips += 1;
                for (j, (payload, tier)) in results.into_iter().enumerate() {
                    let Resolved::Fetch {
                        clip_lo,
                        len,
                        base_va,
                        key_offset,
                        rec,
                        ..
                    } = resolved[run_start + j]
                    else {
                        unreachable!("fetch run resolved from fetch entries");
                    };
                    let (payload, tier) = verify_gathered(
                        source,
                        cfg,
                        failed_nodes,
                        metrics,
                        &rec,
                        (client, base_va),
                        key_offset,
                        clip_lo,
                        len,
                        payload,
                        tier,
                        &mut round_trips,
                    )?;
                    spans.push(SpanOutcome::Data {
                        clip_lo,
                        len,
                        payload,
                        tier,
                    });
                }
            }
        }
    }
    Ok(RangeGather {
        spans,
        gather_round_trips: round_trips,
    })
}

/// The writer stage for one gathered range: account outcomes, merge
/// offset-adjacent data spans into coalesced runs, and issue each run as
/// one stripe write.
fn write_range(
    acc: &mut FlushAcc,
    lustre: &RwLock<Lustre>,
    dest: &str,
    plan: &StripePlan,
    gathered: RangeGather,
) -> SimResult<()> {
    acc.gather_round_trips += gathered.gather_round_trips;
    // (run start, run end, parts)
    let mut run: Option<(u64, u64, Vec<Payload>)> = None;
    for outcome in gathered.spans {
        match outcome {
            SpanOutcome::Drained { len } => acc.drained_ahead += len,
            SpanOutcome::Lost { len } => {
                acc.lost.lost_segments += 1;
                acc.lost.lost_bytes += len;
            }
            SpanOutcome::Data {
                clip_lo,
                len,
                payload,
                tier,
            } => {
                *acc.source_tiers.entry(tier).or_insert(0) += len;
                acc.spans += 1;
                match &mut run {
                    Some((_, run_end, parts)) if *run_end == clip_lo => {
                        *run_end += len;
                        parts.push(payload);
                    }
                    _ => {
                        if let Some(r) = run.take() {
                            write_run(acc, lustre, dest, plan, r)?;
                        }
                        run = Some((clip_lo, clip_lo + len, vec![payload]));
                    }
                }
            }
        }
    }
    if let Some(r) = run {
        write_run(acc, lustre, dest, plan, r)?;
    }
    Ok(())
}

fn write_run(
    acc: &mut FlushAcc,
    lustre: &RwLock<Lustre>,
    dest: &str,
    plan: &StripePlan,
    (lo, _end, mut parts): (u64, u64, Vec<Payload>),
) -> SimResult<()> {
    let payload = if parts.len() == 1 {
        parts.pop().expect("single-part run")
    } else {
        Payload::chain(parts)
    };
    let w = write_stripes(lustre, dest, plan, lo, payload)?;
    acc.absorb_write(w);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metadata::{ClientId, SegKey, SegmentRecord};
    use crate::placement::ProcChain;
    use univistor_sim::Payload;

    /// 2 nodes × 2 clients; 128 B DRAM + 128 B BB per-proc logs, 64 B
    /// chunks/segments; 4 servers.
    fn setup() -> (MetadataService, ChainSet, RwLock<Lustre>, UniviStorConfig) {
        let mut cfg = UniviStorConfig::test_small(2, 2);
        cfg.geometry.servers_per_node = 2;
        let metadata = MetadataService::new(256, 4, 2);
        let chains: ChainSet = (0..4u32)
            .map(|rank| {
                (
                    ClientId::new(0, rank),
                    ProcChain::new(
                        vec![
                            (Tier::Dram, 128),
                            (Tier::SharedBurstBuffer, 128),
                            (Tier::Pfs, u64::MAX),
                        ],
                        64,
                    )
                    .unwrap(),
                )
            })
            .collect();
        (metadata, chains, RwLock::new(Lustre::new(8)), cfg)
    }

    fn populate(metadata: &MetadataService, chains: &ChainSet, segs_per_client: u64) -> u64 {
        for rank in 0..4u32 {
            let client = ClientId::new(0, rank);
            for i in 0..segs_per_client {
                let logical = (rank as u64 * segs_per_client + i) * 64;
                let placed = chains
                    .append(client, Payload::pattern(logical, 64))
                    .unwrap();
                metadata.insert(
                    SegKey {
                        fid: 1,
                        offset: logical,
                    },
                    SegmentRecord::new(client, placed.va, 64),
                    (rank / 2) as usize,
                );
            }
        }
        4 * segs_per_client * 64
    }

    #[test]
    fn flushed_file_reads_back_from_lustre() {
        let (md, chains, lustre, cfg) = setup();
        let size = populate(&md, &chains, 4);
        let receipt = flush_file(
            &md,
            &chains,
            &lustre,
            &cfg,
            &HashSet::new(),
            None,
            None,
            1,
            size,
            "/pfs/f",
            None,
        )
        .unwrap();
        assert_eq!(receipt.file_size, size);
        let lustre = lustre.read().unwrap();
        assert_eq!(lustre.file_size("/pfs/f").unwrap(), size);
        let whole = lustre.read("/pfs/f", 0, size, 999).unwrap();
        for s in 0..(size / 64) {
            assert!(
                whole
                    .slice(s * 64, 64)
                    .content_eq(&Payload::pattern(s * 64, 64)),
                "segment {s} corrupt on PFS"
            );
        }
    }

    #[test]
    fn receipt_accounts_every_byte() {
        let (md, chains, lustre, cfg) = setup();
        let size = populate(&md, &chains, 4);
        let m = JobMetrics::new();
        let r = flush_file(
            &md,
            &chains,
            &lustre,
            &cfg,
            &HashSet::new(),
            Some(&m),
            None,
            1,
            size,
            "/pfs/f",
            None,
        )
        .unwrap();
        assert_eq!(r.per_server_bytes.iter().sum::<u64>(), size);
        assert_eq!(r.per_ost_bytes.iter().sum::<u64>(), size);
        let by_tier: u64 = r.source_tier_bytes.iter().map(|(_, b)| b).sum();
        assert_eq!(by_tier, size);
        // Data spilled across DRAM and BB: both tiers must appear.
        let tiers: Vec<Tier> = r.source_tier_bytes.iter().map(|(t, _)| *t).collect();
        assert!(tiers.contains(&Tier::Dram));
        assert!(tiers.contains(&Tier::SharedBurstBuffer));
        // The panel agrees with the receipt.
        let snap = m.snapshot();
        assert_eq!(
            snap.counter_total("univistor_flush_source_bytes_total"),
            size
        );
        assert_eq!(
            snap.histogram("univistor_flush_drained_bytes", &[])
                .expect("drained histogram")
                .sum,
            size as f64
        );
    }

    #[test]
    fn adaptive_and_naive_both_produce_correct_files() {
        for adaptive in [true, false] {
            let (md, chains, lustre, mut cfg) = setup();
            cfg.features.adaptive_striping = adaptive;
            let size = populate(&md, &chains, 2);
            let r = flush_file(
                &md,
                &chains,
                &lustre,
                &cfg,
                &HashSet::new(),
                None,
                None,
                1,
                size,
                "/pfs/f",
                None,
            )
            .unwrap();
            let whole = lustre.read().unwrap().read("/pfs/f", 0, size, 999).unwrap();
            assert_eq!(whole.len(), size, "adaptive={adaptive}");
            assert_eq!(r.file_size, size);
        }
    }

    #[test]
    fn reflush_overwrites_destination() {
        let (md, chains, lustre, cfg) = setup();
        let size = populate(&md, &chains, 2);
        flush_file(
            &md,
            &chains,
            &lustre,
            &cfg,
            &HashSet::new(),
            None,
            None,
            1,
            size,
            "/pfs/f",
            None,
        )
        .unwrap();
        // Flush again (e.g. the file was re-opened and appended — here
        // identical): destination is recreated, not corrupted.
        flush_file(
            &md,
            &chains,
            &lustre,
            &cfg,
            &HashSet::new(),
            None,
            None,
            1,
            size,
            "/pfs/f",
            None,
        )
        .unwrap();
        assert_eq!(lustre.read().unwrap().file_size("/pfs/f").unwrap(), size);
    }

    #[test]
    fn flush_with_holes_fails() {
        let (md, chains, lustre, cfg) = setup();
        let size = populate(&md, &chains, 2);
        // Claim the file is bigger than what was written.
        let err = flush_file(
            &md,
            &chains,
            &lustre,
            &cfg,
            &HashSet::new(),
            None,
            None,
            1,
            size + 64,
            "/pfs/f",
            None,
        )
        .unwrap_err();
        assert!(matches!(err, SimError::InvalidFlow(_)));
    }

    #[test]
    fn degraded_flush_skips_lost_spans_and_reports_them() {
        let (md, chains, lustre, cfg) = setup();
        let size = populate(&md, &chains, 2);
        // No replicas were written, and node 0 (ranks 0 and 1, logical
        // [0, 256)) fails: that half is lost, the other half must still
        // land on the PFS.
        let failed: HashSet<usize> = [0].into_iter().collect();
        let m = JobMetrics::new();
        let r = flush_file(
            &md,
            &chains,
            &lustre,
            &cfg,
            &failed,
            Some(&m),
            None,
            1,
            size,
            "/pfs/f",
            None,
        )
        .unwrap();
        assert_eq!(r.lost.lost_bytes, size / 2);
        assert!(r.lost.lost_segments >= 4, "{:?}", r.lost);
        assert_eq!(r.per_server_bytes.iter().sum::<u64>(), size / 2);
        // The healthy half is byte-identical on Lustre.
        let pfs = lustre.read().unwrap();
        for s in (size / 2 / 64)..(size / 64) {
            let got = pfs.read("/pfs/f", s * 64, 64, 999).unwrap();
            assert!(got.content_eq(&Payload::pattern(s * 64, 64)), "segment {s}");
        }
        drop(pfs);
        // The skipped bytes feed the telemetry counter.
        assert_eq!(
            m.snapshot()
                .counter_total("univistor_flush_skipped_lost_bytes_total"),
            size / 2
        );
    }

    #[test]
    fn flush_retries_exhaust_on_persistent_transient_faults() {
        use crate::fault::{FaultConfig, FaultInjector};
        let (md, chains, lustre, mut cfg) = setup();
        let size = populate(&md, &chains, 2);
        cfg.retry.backoff_base_us = 0;
        cfg.retry.backoff_cap_us = 0;
        let inj = FaultInjector::new(FaultConfig {
            seed: 3,
            transient_prob: 1.0,
            ..FaultConfig::default()
        });
        let err = flush_file(
            &md,
            &chains,
            &lustre,
            &cfg,
            &HashSet::new(),
            None,
            Some(&inj),
            1,
            size,
            "/pfs/f",
            None,
        )
        .unwrap_err();
        match err {
            SimError::Transient { attempt, .. } => {
                assert_eq!(attempt, cfg.retry.max_attempts)
            }
            other => panic!("expected exhausted transient, got {other:?}"),
        }
        // A fault-free injector changes nothing about a healthy flush.
        let quiet = FaultInjector::new(FaultConfig::default());
        flush_file(
            &md,
            &chains,
            &lustre,
            &cfg,
            &HashSet::new(),
            None,
            Some(&quiet),
            1,
            size,
            "/pfs/f",
            None,
        )
        .unwrap();
    }

    /// Build a drain ledger covering `fid`'s records in `[0, upto)`, as
    /// if the background drain had copied them: a first full flush puts
    /// the bytes on `dest` and fixes the plan, then the ledger remembers
    /// the records.
    fn ledger_after_flush(
        md: &MetadataService,
        chains: &ChainSet,
        lustre: &RwLock<Lustre>,
        cfg: &UniviStorConfig,
        size: u64,
        upto: u64,
        dest: &str,
    ) -> DrainLedger {
        let receipt = flush_file(
            md,
            chains,
            lustre,
            cfg,
            &HashSet::new(),
            None,
            None,
            1,
            size,
            dest,
            None,
        )
        .unwrap();
        let (_, records) = md.lookup_range(1, 0, upto);
        DrainLedger {
            plan: receipt.plan,
            spans: records
                .into_iter()
                .filter(|(k, _)| k.offset < upto)
                .map(|(k, r)| (k.offset, r))
                .collect(),
        }
    }

    #[test]
    fn resume_skips_drained_spans_and_accounts_them() {
        let (md, chains, lustre, cfg) = setup();
        let size = populate(&md, &chains, 4);
        // Everything was drained ahead.
        let ledger = ledger_after_flush(&md, &chains, &lustre, &cfg, size, size, "/pfs/f");
        let m = JobMetrics::new();
        let r = flush_file(
            &md,
            &chains,
            &lustre,
            &cfg,
            &HashSet::new(),
            Some(&m),
            None,
            1,
            size,
            "/pfs/f",
            Some(&ledger),
        )
        .unwrap();
        assert_eq!(r.drained_ahead_bytes, size);
        assert_eq!(r.per_server_bytes.iter().sum::<u64>(), 0);
        assert_eq!(
            m.snapshot()
                .counter_total("univistor_tiering_catchup_skipped_bytes_total"),
            size
        );
        // The destination still reads back byte-identical.
        let pfs = lustre.read().unwrap();
        let whole = pfs.read("/pfs/f", 0, size, 999).unwrap();
        for s in 0..(size / 64) {
            assert!(
                whole
                    .slice(s * 64, 64)
                    .content_eq(&Payload::pattern(s * 64, 64)),
                "segment {s} corrupt after catch-up"
            );
        }
    }

    #[test]
    fn resume_with_partial_ledger_flushes_only_the_rest() {
        let (md, chains, lustre, cfg) = setup();
        let size = populate(&md, &chains, 4);
        // Only the first half was drained ahead.
        let ledger = ledger_after_flush(&md, &chains, &lustre, &cfg, size, size / 2, "/pfs/f");
        let r = flush_file(
            &md,
            &chains,
            &lustre,
            &cfg,
            &HashSet::new(),
            None,
            None,
            1,
            size,
            "/pfs/f",
            Some(&ledger),
        )
        .unwrap();
        assert_eq!(r.drained_ahead_bytes, size / 2);
        assert_eq!(r.per_server_bytes.iter().sum::<u64>(), size / 2);
        let whole = lustre.read().unwrap().read("/pfs/f", 0, size, 999).unwrap();
        for s in 0..(size / 64) {
            assert!(
                whole
                    .slice(s * 64, 64)
                    .content_eq(&Payload::pattern(s * 64, 64)),
                "segment {s} corrupt after partial catch-up"
            );
        }
    }

    #[test]
    fn resume_ignores_stale_ledger_entries() {
        let (md, chains, lustre, cfg) = setup();
        let size = populate(&md, &chains, 4);
        let mut ledger = ledger_after_flush(&md, &chains, &lustre, &cfg, size, size, "/pfs/f");
        // One entry no longer matches the live record (as after an
        // overwrite the invalidation hook missed): it must be re-flushed
        // from the cache, not trusted.
        let stale = ledger.spans.get_mut(&0).expect("span at 0");
        stale.len = 32;
        let r = flush_file(
            &md,
            &chains,
            &lustre,
            &cfg,
            &HashSet::new(),
            None,
            None,
            1,
            size,
            "/pfs/f",
            Some(&ledger),
        )
        .unwrap();
        assert_eq!(r.drained_ahead_bytes, size - 64);
        assert_eq!(r.per_server_bytes.iter().sum::<u64>(), 64);
    }

    #[test]
    fn drained_spans_survive_source_node_failure() {
        let (md, chains, lustre, cfg) = setup();
        let size = populate(&md, &chains, 2);
        // The drain copied everything while all nodes were healthy; then
        // node 0 (logical [0, 256), no replicas) died before close.
        let ledger = ledger_after_flush(&md, &chains, &lustre, &cfg, size, size, "/pfs/f");
        let failed: HashSet<usize> = [0].into_iter().collect();
        let r = flush_file(
            &md,
            &chains,
            &lustre,
            &cfg,
            &failed,
            None,
            None,
            1,
            size,
            "/pfs/f",
            Some(&ledger),
        )
        .unwrap();
        // Nothing is lost: the drained copies stand in for the dead node.
        assert_eq!(r.lost, FlushReport::default());
        assert_eq!(r.drained_ahead_bytes, size);
        let whole = lustre.read().unwrap().read("/pfs/f", 0, size, 999).unwrap();
        for s in 0..(size / 64) {
            assert!(
                whole
                    .slice(s * 64, 64)
                    .content_eq(&Payload::pattern(s * 64, 64)),
                "segment {s} corrupt after degraded catch-up"
            );
        }
    }

    #[test]
    fn resume_without_destination_falls_back_to_full_flush() {
        let (md, chains, lustre, cfg) = setup();
        let size = populate(&md, &chains, 2);
        let ledger = ledger_after_flush(&md, &chains, &lustre, &cfg, size, size, "/pfs/f");
        // The destination vanished (e.g. an external delete): the ledger
        // must be discarded, not trusted into a hole-ridden file.
        lustre.write().unwrap().delete("/pfs/f").unwrap();
        let r = flush_file(
            &md,
            &chains,
            &lustre,
            &cfg,
            &HashSet::new(),
            None,
            None,
            1,
            size,
            "/pfs/f",
            Some(&ledger),
        )
        .unwrap();
        assert_eq!(r.drained_ahead_bytes, 0);
        assert_eq!(r.per_server_bytes.iter().sum::<u64>(), size);
        assert_eq!(lustre.read().unwrap().file_size("/pfs/f").unwrap(), size);
    }

    #[test]
    fn parallel_and_sequential_receipts_agree_and_parallel_coalesces() {
        let run = |pipeline: FlushPipeline| {
            let (md, chains, lustre, mut cfg) = setup();
            cfg.flush_pipeline = pipeline;
            let size = populate(&md, &chains, 4);
            let r = flush_file(
                &md,
                &chains,
                &lustre,
                &cfg,
                &HashSet::new(),
                None,
                None,
                1,
                size,
                "/pfs/f",
                None,
            )
            .unwrap();
            let bytes = lustre.read().unwrap().read("/pfs/f", 0, size, 999).unwrap();
            (r, bytes)
        };
        let (seq, seq_bytes) = run(FlushPipeline::Sequential);
        let (par, par_bytes) = run(FlushPipeline::Parallel);
        // Byte-identical Lustre contents.
        assert!(par_bytes.content_eq(&seq_bytes));
        // Identical semantic receipt.
        assert_eq!(par.file_size, seq.file_size);
        assert_eq!(par.per_server_bytes, seq.per_server_bytes);
        assert_eq!(par.per_ost_bytes, seq.per_ost_bytes);
        assert_eq!(par.source_tier_bytes, seq.source_tier_bytes);
        assert_eq!(par.lock_revocations, seq.lock_revocations);
        assert_eq!(par.lost, seq.lost);
        assert_eq!(par.drained_ahead_bytes, seq.drained_ahead_bytes);
        assert_eq!(par.spans, seq.spans);
        // The reference engine writes and fetches span-at-a-time…
        assert_eq!(seq.write_calls, seq.spans);
        assert_eq!(seq.gather_round_trips, seq.spans);
        // …while the pipelined engine coalesces and batches.
        assert!(
            par.write_calls < seq.write_calls,
            "no coalescing: {} vs {}",
            par.write_calls,
            seq.write_calls
        );
        assert!(
            par.ost_writes < seq.ost_writes,
            "no OST-write reduction: {} vs {}",
            par.ost_writes,
            seq.ost_writes
        );
        assert!(
            par.gather_round_trips < seq.gather_round_trips,
            "no gather batching: {} vs {}",
            par.gather_round_trips,
            seq.gather_round_trips
        );
        assert_eq!(par.catchup_passes, 0);
        assert_eq!(seq.catchup_passes, 0);
    }

    #[test]
    fn parallel_flush_catches_up_with_racing_overwrites() {
        let (md, chains, lustre, cfg) = setup();
        let size = populate(&md, &chains, 4);
        let writer = ClientId::new(0, 0);
        std::thread::scope(|s| {
            // A foreground writer keeps overwriting the span at offset 0
            // while the no-checkout flush runs; each insert bumps the
            // fid's generation, invalidating in-flight passes.
            s.spawn(|| {
                for i in 0..32u64 {
                    let placed = chains
                        .append(writer, Payload::pattern(7000 + i, 64))
                        .unwrap();
                    md.insert(
                        SegKey { fid: 1, offset: 0 },
                        SegmentRecord::new(writer, placed.va, 64),
                        0,
                    );
                }
            });
            let r = flush_file(
                &md,
                &chains,
                &lustre,
                &cfg,
                &HashSet::new(),
                None,
                None,
                1,
                size,
                "/pfs/f",
                None,
            )
            .unwrap();
            assert_eq!(r.per_server_bytes.iter().sum::<u64>(), size);
            assert_eq!(r.lost, FlushReport::default());
        });
        // The accepted pass saw a consistent snapshot: offset 0 on the
        // PFS holds one of the versions that was current at some point
        // during the flush — never torn or stale-beyond-recognition.
        let got = lustre.read().unwrap().read("/pfs/f", 0, 64, 999).unwrap();
        let valid = std::iter::once(Payload::pattern(0, 64))
            .chain((0..32u64).map(|i| Payload::pattern(7000 + i, 64)))
            .any(|p| got.content_eq(&p));
        assert!(valid, "offset 0 holds a torn or unknown version");
        // With writers quiesced, a fresh flush lands the final version.
        let r = flush_file(
            &md,
            &chains,
            &lustre,
            &cfg,
            &HashSet::new(),
            None,
            None,
            1,
            size,
            "/pfs/f",
            None,
        )
        .unwrap();
        assert_eq!(r.catchup_passes, 0);
        let got = lustre.read().unwrap().read("/pfs/f", 0, 64, 999).unwrap();
        let (_, records) = md.lookup_range(1, 0, 64);
        let (_, final_rec) = records.first().expect("record at offset 0");
        let (current, _) = chains.read_at(final_rec.client, final_rec.va, 64).unwrap();
        assert!(got.content_eq(&current), "quiescent flush not current");
    }

    #[test]
    fn empty_flush_rejected() {
        let (md, chains, lustre, cfg) = setup();
        assert!(flush_file(
            &md,
            &chains,
            &lustre,
            &cfg,
            &HashSet::new(),
            None,
            None,
            1,
            0,
            "/pfs/f",
            None
        )
        .is_err());
    }
}
