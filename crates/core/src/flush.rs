//! Server-side asynchronous flush (§II-A, §II-D).
//!
//! At file-close time the UniviStor servers collectively move the cached
//! data to the PFS for long-term persistence, overlapping the application's
//! next compute phase. The logical file is split into one contiguous range
//! per server; each server gathers its range's segments from wherever DHP
//! placed them (its node's DRAM logs, the shared burst buffer, …) and
//! writes them to Lustre with the striping chosen by
//! [`crate::striping::adaptive_plan`] (or the all-OST naive layout when
//! ADPT is disabled).
//!
//! The flush is *functional*: bytes land in OST objects and can be read
//! back from Lustre. The [`FlushReceipt`] captures everything the timing
//! plane needs: per-server and per-OST byte loads, which tier each byte
//! came from, stripe-synchronization fan-out, and lock revocations.

use crate::config::UniviStorConfig;
use crate::fault::{with_retries, FaultInjector};
use crate::metadata::MetadataService;
use crate::metrics::JobMetrics;
use crate::placement::ChainSet;
use crate::striping::{adaptive_plan, naive_plan, StripePlan};
use crate::va::{Tier, VirtualAddr};
use std::collections::{HashMap, HashSet};
use std::sync::RwLock;
use univistor_pfs::Lustre;
use univistor_sim::{SimError, SimResult};

/// What one flush did.
#[derive(Debug, Clone)]
pub struct FlushReceipt {
    /// Destination path on the PFS.
    pub dest: String,
    /// Logical bytes flushed.
    pub file_size: u64,
    /// The striping decision.
    pub plan: StripePlan,
    /// Bytes written by each flushing server.
    pub per_server_bytes: Vec<u64>,
    /// Bytes received by each OST.
    pub per_ost_bytes: Vec<u64>,
    /// Bytes sourced from each tier (DRAM vs. BB vs. PFS-log).
    pub source_tier_bytes: Vec<(Tier, u64)>,
    /// Lustre lock revocations during the flush.
    pub lock_revocations: u64,
    /// Distinct OSTs each server contacted (sync overhead driver).
    pub osts_per_server: usize,
    /// Spans this flush could not move because primary and replica were
    /// both on failed nodes (degraded-mode accounting).
    pub lost: FlushReport,
}

/// Degraded-mode accounting of one flush: the spans skipped because no
/// healthy copy existed. A fully healthy flush reports all zeros.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlushReport {
    /// Clipped spans skipped (a record clipped by several server ranges
    /// counts once per range).
    pub lost_segments: u64,
    /// Bytes skipped.
    pub lost_bytes: u64,
}

/// Flush every byte of `fid` (logical size `file_size`) to `dest` on
/// `lustre`, using the configuration's striping mode and server count.
/// Segments whose primary node is in `failed_nodes` are flushed from
/// their resilience replicas. A completed flush is accounted into
/// `metrics` (drained/per-server histograms, source tiers, revocations)
/// when a panel is given.
///
/// The flush **degrades gracefully**: a span whose primary *and* replica
/// (or a replica-less span whose primary) sit on failed nodes is skipped
/// rather than aborting the pass — every healthy byte still lands on the
/// PFS, and the skipped spans are reported in the receipt's
/// [`FlushReport`] (feeding `univistor_flush_skipped_lost_bytes_total`).
/// A shortfall *not* explained by lost spans (a genuine hole) is still an
/// error. Transient faults from `injector` on the lookup and
/// chain-read steps are retried under `cfg.retry`.
///
/// `lustre` is locked exclusively only around the individual
/// create/delete/write calls, so a long flush does not starve concurrent
/// `lustre_read`s; segment gathering takes shared chain/metadata locks.
#[allow(clippy::too_many_arguments)]
pub fn flush_file(
    metadata: &MetadataService,
    chains: &ChainSet,
    lustre: &RwLock<Lustre>,
    cfg: &UniviStorConfig,
    failed_nodes: &HashSet<usize>,
    metrics: Option<&JobMetrics>,
    injector: Option<&FaultInjector>,
    fid: u64,
    file_size: u64,
    dest: &str,
) -> SimResult<FlushReceipt> {
    if file_size == 0 {
        return Err(SimError::InvalidFlow("flush of empty file".into()));
    }
    let servers = cfg.geometry.total_servers();
    let osts = lustre.read().expect("lustre poisoned").ost_count();
    let plan = if cfg.features.adaptive_striping {
        adaptive_plan(file_size, servers, osts, cfg.alpha, cfg.cal.max_stripe_size)
    } else {
        naive_plan(file_size, servers, osts, cfg.cal.default_stripe_size)
    };

    // (Re-)create the destination with the chosen layout.
    {
        let mut pfs = lustre.write().expect("lustre poisoned");
        if pfs.exists(dest) {
            pfs.delete(dest)?;
        }
        pfs.create(dest, plan.layout.clone())?;
    }

    let mut per_server_bytes = vec![0u64; servers];
    let mut per_ost_bytes = vec![0u64; osts];
    let mut source_tiers: HashMap<Tier, u64> = HashMap::new();
    let mut revocations = 0u64;
    let mut lost = FlushReport::default();

    for (server, &(start, end)) in plan.server_ranges.iter().enumerate() {
        if end <= start {
            continue;
        }
        // One instrumented metadata fetch per server range; transient
        // faults are absorbed by the retry budget.
        if let Some(inj) = injector {
            with_retries(&cfg.retry, metrics, || inj.inject("flush_lookup", None))?;
        }
        let (_, records) = metadata.lookup_range(fid, start, end);
        for (key, rec) in records {
            let seg_end = key.offset + rec.len;
            let clip_lo = key.offset.max(start);
            let clip_hi = seg_end.min(end);
            if clip_hi <= clip_lo {
                continue;
            }
            let clip_len = clip_hi - clip_lo;
            let primary_node = cfg.geometry.node_of_rank(rec.client.rank as usize);
            // Prefer the primary; fall back to a replica on a healthy
            // node; with neither, the span is lost — skip it and account
            // it instead of aborting the whole pass.
            let healthy_source = if !failed_nodes.contains(&primary_node) {
                Some((rec.client, rec.va))
            } else {
                rec.replica.filter(|(rc, _)| {
                    !failed_nodes.contains(&cfg.geometry.node_of_rank(rc.rank as usize))
                })
            };
            let Some((source, base_va)) = healthy_source else {
                lost.lost_segments += 1;
                lost.lost_bytes += clip_len;
                continue;
            };
            let va = VirtualAddr(base_va.0 + (clip_lo - key.offset));
            let (payload, tier) =
                with_retries(&cfg.retry, metrics, || chains.read_at(source, va, clip_len))?;
            *source_tiers.entry(tier).or_insert(0) += clip_len;
            let receipt = lustre.write().expect("lustre poisoned").write(
                dest,
                clip_lo,
                payload,
                server as u64,
            )?;
            revocations += receipt.lock_revocations;
            for (ost, bytes) in receipt.ost_bytes() {
                per_ost_bytes[ost] += bytes;
            }
            per_server_bytes[server] += clip_len;
        }
    }

    let flushed: u64 = per_server_bytes.iter().sum();
    if flushed + lost.lost_bytes != file_size {
        return Err(SimError::InvalidFlow(format!(
            "flush moved {flushed} of {file_size} bytes ({} lost to failures) — holes in '{dest}'?",
            lost.lost_bytes
        )));
    }

    let mut source_tier_bytes: Vec<(Tier, u64)> = source_tiers.into_iter().collect();
    source_tier_bytes.sort_by_key(|(t, _)| *t);
    let receipt = FlushReceipt {
        dest: dest.to_string(),
        file_size,
        osts_per_server: plan.osts_per_server,
        plan,
        per_server_bytes,
        per_ost_bytes,
        source_tier_bytes,
        lock_revocations: revocations,
        lost,
    };
    if let Some(m) = metrics {
        m.record_flush(&receipt);
    }
    Ok(receipt)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metadata::{ClientId, SegKey, SegmentRecord};
    use crate::placement::ProcChain;
    use univistor_sim::Payload;

    /// 2 nodes × 2 clients; 128 B DRAM + 128 B BB per-proc logs, 64 B
    /// chunks/segments; 4 servers.
    fn setup() -> (MetadataService, ChainSet, RwLock<Lustre>, UniviStorConfig) {
        let mut cfg = UniviStorConfig::test_small(2, 2);
        cfg.geometry.servers_per_node = 2;
        let metadata = MetadataService::new(256, 4, 2);
        let chains: ChainSet = (0..4u32)
            .map(|rank| {
                (
                    ClientId::new(0, rank),
                    ProcChain::new(
                        vec![
                            (Tier::Dram, 128),
                            (Tier::SharedBurstBuffer, 128),
                            (Tier::Pfs, u64::MAX),
                        ],
                        64,
                    )
                    .unwrap(),
                )
            })
            .collect();
        (metadata, chains, RwLock::new(Lustre::new(8)), cfg)
    }

    fn populate(metadata: &MetadataService, chains: &ChainSet, segs_per_client: u64) -> u64 {
        for rank in 0..4u32 {
            let client = ClientId::new(0, rank);
            for i in 0..segs_per_client {
                let logical = (rank as u64 * segs_per_client + i) * 64;
                let placed = chains
                    .append(client, Payload::pattern(logical, 64))
                    .unwrap();
                metadata.insert(
                    SegKey {
                        fid: 1,
                        offset: logical,
                    },
                    SegmentRecord::new(client, placed.va, 64),
                    (rank / 2) as usize,
                );
            }
        }
        4 * segs_per_client * 64
    }

    #[test]
    fn flushed_file_reads_back_from_lustre() {
        let (md, chains, lustre, cfg) = setup();
        let size = populate(&md, &chains, 4);
        let receipt = flush_file(
            &md,
            &chains,
            &lustre,
            &cfg,
            &HashSet::new(),
            None,
            None,
            1,
            size,
            "/pfs/f",
        )
        .unwrap();
        assert_eq!(receipt.file_size, size);
        let lustre = lustre.read().unwrap();
        assert_eq!(lustre.file_size("/pfs/f").unwrap(), size);
        let whole = lustre.read("/pfs/f", 0, size, 999).unwrap();
        for s in 0..(size / 64) {
            assert!(
                whole
                    .slice(s * 64, 64)
                    .content_eq(&Payload::pattern(s * 64, 64)),
                "segment {s} corrupt on PFS"
            );
        }
    }

    #[test]
    fn receipt_accounts_every_byte() {
        let (md, chains, lustre, cfg) = setup();
        let size = populate(&md, &chains, 4);
        let m = JobMetrics::new();
        let r = flush_file(
            &md,
            &chains,
            &lustre,
            &cfg,
            &HashSet::new(),
            Some(&m),
            None,
            1,
            size,
            "/pfs/f",
        )
        .unwrap();
        assert_eq!(r.per_server_bytes.iter().sum::<u64>(), size);
        assert_eq!(r.per_ost_bytes.iter().sum::<u64>(), size);
        let by_tier: u64 = r.source_tier_bytes.iter().map(|(_, b)| b).sum();
        assert_eq!(by_tier, size);
        // Data spilled across DRAM and BB: both tiers must appear.
        let tiers: Vec<Tier> = r.source_tier_bytes.iter().map(|(t, _)| *t).collect();
        assert!(tiers.contains(&Tier::Dram));
        assert!(tiers.contains(&Tier::SharedBurstBuffer));
        // The panel agrees with the receipt.
        let snap = m.snapshot();
        assert_eq!(
            snap.counter_total("univistor_flush_source_bytes_total"),
            size
        );
        assert_eq!(
            snap.histogram("univistor_flush_drained_bytes", &[])
                .expect("drained histogram")
                .sum,
            size as f64
        );
    }

    #[test]
    fn adaptive_and_naive_both_produce_correct_files() {
        for adaptive in [true, false] {
            let (md, chains, lustre, mut cfg) = setup();
            cfg.features.adaptive_striping = adaptive;
            let size = populate(&md, &chains, 2);
            let r = flush_file(
                &md,
                &chains,
                &lustre,
                &cfg,
                &HashSet::new(),
                None,
                None,
                1,
                size,
                "/pfs/f",
            )
            .unwrap();
            let whole = lustre.read().unwrap().read("/pfs/f", 0, size, 999).unwrap();
            assert_eq!(whole.len(), size, "adaptive={adaptive}");
            assert_eq!(r.file_size, size);
        }
    }

    #[test]
    fn reflush_overwrites_destination() {
        let (md, chains, lustre, cfg) = setup();
        let size = populate(&md, &chains, 2);
        flush_file(
            &md,
            &chains,
            &lustre,
            &cfg,
            &HashSet::new(),
            None,
            None,
            1,
            size,
            "/pfs/f",
        )
        .unwrap();
        // Flush again (e.g. the file was re-opened and appended — here
        // identical): destination is recreated, not corrupted.
        flush_file(
            &md,
            &chains,
            &lustre,
            &cfg,
            &HashSet::new(),
            None,
            None,
            1,
            size,
            "/pfs/f",
        )
        .unwrap();
        assert_eq!(lustre.read().unwrap().file_size("/pfs/f").unwrap(), size);
    }

    #[test]
    fn flush_with_holes_fails() {
        let (md, chains, lustre, cfg) = setup();
        let size = populate(&md, &chains, 2);
        // Claim the file is bigger than what was written.
        let err = flush_file(
            &md,
            &chains,
            &lustre,
            &cfg,
            &HashSet::new(),
            None,
            None,
            1,
            size + 64,
            "/pfs/f",
        )
        .unwrap_err();
        assert!(matches!(err, SimError::InvalidFlow(_)));
    }

    #[test]
    fn degraded_flush_skips_lost_spans_and_reports_them() {
        let (md, chains, lustre, cfg) = setup();
        let size = populate(&md, &chains, 2);
        // No replicas were written, and node 0 (ranks 0 and 1, logical
        // [0, 256)) fails: that half is lost, the other half must still
        // land on the PFS.
        let failed: HashSet<usize> = [0].into_iter().collect();
        let m = JobMetrics::new();
        let r = flush_file(
            &md,
            &chains,
            &lustre,
            &cfg,
            &failed,
            Some(&m),
            None,
            1,
            size,
            "/pfs/f",
        )
        .unwrap();
        assert_eq!(r.lost.lost_bytes, size / 2);
        assert!(r.lost.lost_segments >= 4, "{:?}", r.lost);
        assert_eq!(r.per_server_bytes.iter().sum::<u64>(), size / 2);
        // The healthy half is byte-identical on Lustre.
        let pfs = lustre.read().unwrap();
        for s in (size / 2 / 64)..(size / 64) {
            let got = pfs.read("/pfs/f", s * 64, 64, 999).unwrap();
            assert!(got.content_eq(&Payload::pattern(s * 64, 64)), "segment {s}");
        }
        drop(pfs);
        // The skipped bytes feed the telemetry counter.
        assert_eq!(
            m.snapshot()
                .counter_total("univistor_flush_skipped_lost_bytes_total"),
            size / 2
        );
    }

    #[test]
    fn flush_retries_exhaust_on_persistent_transient_faults() {
        use crate::fault::{FaultConfig, FaultInjector};
        let (md, chains, lustre, mut cfg) = setup();
        let size = populate(&md, &chains, 2);
        cfg.retry.backoff_base_us = 0;
        cfg.retry.backoff_cap_us = 0;
        let inj = FaultInjector::new(FaultConfig {
            seed: 3,
            transient_prob: 1.0,
            ..FaultConfig::default()
        });
        let err = flush_file(
            &md,
            &chains,
            &lustre,
            &cfg,
            &HashSet::new(),
            None,
            Some(&inj),
            1,
            size,
            "/pfs/f",
        )
        .unwrap_err();
        match err {
            SimError::Transient { attempt, .. } => {
                assert_eq!(attempt, cfg.retry.max_attempts)
            }
            other => panic!("expected exhausted transient, got {other:?}"),
        }
        // A fault-free injector changes nothing about a healthy flush.
        let quiet = FaultInjector::new(FaultConfig::default());
        flush_file(
            &md,
            &chains,
            &lustre,
            &cfg,
            &HashSet::new(),
            None,
            Some(&quiet),
            1,
            size,
            "/pfs/f",
        )
        .unwrap();
    }

    #[test]
    fn empty_flush_rejected() {
        let (md, chains, lustre, cfg) = setup();
        assert!(flush_file(
            &md,
            &chains,
            &lustre,
            &cfg,
            &HashSet::new(),
            None,
            None,
            1,
            0,
            "/pfs/f"
        )
        .is_err());
    }
}
