//! Unified error type for the public `univistor-core` API.
//!
//! The simulation substrate reports failures as bare [`SimError`]s, which
//! carry no information about *which* operation on *which* file by *which*
//! client went wrong. [`Error`] wraps a `SimError` with that context so
//! callers of [`crate::server::UniviStorJob`] get actionable messages,
//! while `From<Error> for SimError` keeps the inner variant intact for
//! code that matches on it (e.g. `SimError::Hole`).

use crate::metadata::ClientId;
use crate::va::Tier;
use std::fmt;
use univistor_sim::SimError;

/// Result alias for the public core API.
pub type Result<T> = std::result::Result<T, Error>;

/// A [`SimError`] annotated with the operation that raised it and, when
/// known, the file path, the requesting client, and the storage tier
/// involved.
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    op: &'static str,
    path: Option<String>,
    client: Option<ClientId>,
    tier: Option<Tier>,
    source: SimError,
}

impl Error {
    /// Wrap `source` as having been raised by `op` (a static operation
    /// name like `"open"` or `"flush"`).
    pub fn new(op: &'static str, source: SimError) -> Self {
        Error {
            op,
            path: None,
            client: None,
            tier: None,
            source,
        }
    }

    /// Attach the file path the operation targeted.
    pub fn with_path(mut self, path: impl Into<String>) -> Self {
        self.path = Some(path.into());
        self
    }

    /// Attach the client on whose behalf the operation ran.
    pub fn with_client(mut self, client: ClientId) -> Self {
        self.client = Some(client);
        self
    }

    /// Attach the storage tier involved.
    pub fn with_tier(mut self, tier: Tier) -> Self {
        self.tier = Some(tier);
        self
    }

    /// The operation that raised the error.
    pub fn op(&self) -> &'static str {
        self.op
    }

    /// The file path, if one was attached.
    pub fn path(&self) -> Option<&str> {
        self.path.as_deref()
    }

    /// The requesting client, if one was attached.
    pub fn client(&self) -> Option<ClientId> {
        self.client
    }

    /// The storage tier, if one was attached.
    pub fn tier(&self) -> Option<Tier> {
        self.tier
    }

    /// Whether the underlying failure is a transient fault that is safe
    /// to retry (see [`SimError::Transient`]).
    pub fn is_transient(&self) -> bool {
        matches!(self.source, SimError::Transient { .. })
    }

    /// The injection site of a transient source (`None` for any other
    /// source) — retry loops fold it into the op-kind retry label.
    pub fn transient_site(&self) -> Option<&str> {
        match &self.source {
            SimError::Transient { site, .. } => Some(site),
            _ => None,
        }
    }

    /// How many attempts a transient failure survived before being
    /// surfaced, when the source is transient (0 = failed on the first
    /// try, no retry loop involved).
    pub fn attempts(&self) -> Option<u64> {
        match &self.source {
            SimError::Transient { attempt, .. } => Some(*attempt),
            _ => None,
        }
    }

    /// Rewrite the attempt count of a transient source (used by retry
    /// loops when they exhaust their budget). No-op for other sources.
    pub fn with_attempts(mut self, attempts: u64) -> Self {
        if let SimError::Transient { attempt, .. } = &mut self.source {
            *attempt = attempts;
        }
        self
    }

    /// The underlying simulation error.
    pub fn source_err(&self) -> &SimError {
        &self.source
    }

    /// Consume the wrapper, yielding the underlying simulation error.
    pub fn into_source(self) -> SimError {
        self.source
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} failed", self.op)?;
        if let Some(path) = &self.path {
            write!(f, " on {path:?}")?;
        }
        if let Some(client) = self.client {
            write!(f, " for client {}.{}", client.app, client.rank)?;
        }
        if let Some(tier) = self.tier {
            write!(f, " at tier {tier}")?;
        }
        write!(f, ": {}", self.source)
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

/// Strip the context, recovering the inner [`SimError`]. This lets the
/// `?` operator carry a contextualized error back across boundaries that
/// are pinned to `SimResult` (the MPI driver trait), and keeps existing
/// `match`es on `SimError` variants working.
impl From<Error> for SimError {
    fn from(e: Error) -> SimError {
        e.source
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_all_context() {
        let err = Error::new(
            "read",
            SimError::Hole {
                offset: 64,
                len: 32,
            },
        )
        .with_path("/data/ckpt")
        .with_client(ClientId::new(1, 7))
        .with_tier(Tier::SharedBurstBuffer);
        let text = err.to_string();
        assert!(text.contains("read failed"), "{text}");
        assert!(text.contains("/data/ckpt"), "{text}");
        assert!(text.contains("1.7"), "{text}");
        assert!(text.contains("BB"), "{text}");
    }

    #[test]
    fn round_trips_back_to_sim_error() {
        let err = Error::new(
            "write",
            SimError::OutOfCapacity {
                requested: 10,
                available: 4,
            },
        )
        .with_path("/f");
        let sim: SimError = err.into();
        assert!(matches!(
            sim,
            SimError::OutOfCapacity {
                requested: 10,
                available: 4
            }
        ));
    }

    #[test]
    fn source_chain_reaches_sim_error() {
        let err = Error::new("open", SimError::InvalidConfig("bad".into()));
        let src = std::error::Error::source(&err).expect("source");
        assert!(src.to_string().contains("bad"));
    }

    #[test]
    fn transient_errors_expose_and_rewrite_attempts() {
        let err = Error::new(
            "write",
            SimError::Transient {
                site: "chain_append".into(),
                attempt: 0,
            },
        )
        .with_client(ClientId::new(0, 3));
        assert!(err.is_transient());
        assert_eq!(err.attempts(), Some(0));
        let err = err.with_attempts(4);
        assert_eq!(err.attempts(), Some(4));
        let text = err.to_string();
        assert!(text.contains("chain_append"), "{text}");
        assert!(text.contains("attempt 4"), "{text}");

        let solid = Error::new("open", SimError::InvalidConfig("x".into()));
        assert!(!solid.is_transient());
        assert_eq!(solid.attempts(), None);
        assert_eq!(solid.clone().with_attempts(9), solid);
    }
}
