//! Deterministic fault injection and retry machinery.
//!
//! UniviStor's resilience story needs failures it can rehearse: the
//! [`FaultInjector`] turns a seed plus a [`FaultConfig`] into a fully
//! reproducible fault schedule — permanent node losses at fixed
//! operation counts, transient per-tier I/O errors with a configured
//! probability, and optional per-operation latency. Every injection
//! decision is a pure function of `(seed, op_index)`, so a chaos run
//! replays bit-for-bit under the same seed regardless of which thread
//! happens to issue which operation first (the op index itself is a
//! single atomic counter, so interleaving shifts *which* op draws a
//! fault but a single-threaded workload is exactly reproducible).
//!
//! Transient faults surface as [`SimError::Transient`] and are meant to
//! be absorbed by [`with_retries`], a capped-exponential-backoff loop
//! driven by the [`RetryPolicy`] in the job config. Exhausted budgets
//! rewrite the error's `attempt` field so callers (and tests) can see
//! how hard the operation tried before giving up.
//!
//! The injector is deliberately lock-free: an `AtomicU64` op counter,
//! an `AtomicUsize` cursor over the sorted node-failure schedule, and a
//! `OnceLock` for the metric handles. When `UniviStorConfig::fault` is
//! `None` (the default) none of this is constructed and the hot path
//! pays only an `Option` check.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::time::Duration;

use univistor_sim::rng::DetRng;
use univistor_sim::{SimError, SimResult};

use crate::error::Error;
use crate::metrics::{FaultCounters, JobMetrics};
use crate::va::Tier;

/// Golden-ratio increment used to decorrelate per-op RNG streams.
const OP_STREAM: u64 = 0x9E37_79B9_7F4A_7C15;

/// Declarative fault schedule, carried in `UniviStorConfig::fault`.
///
/// All fields default to "no faults"; a config with `fault: Some(..)`
/// but every knob at zero behaves identically to `fault: None` except
/// for the per-op atomic increment.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultConfig {
    /// Seed for the injection RNG. Two runs with the same seed and the
    /// same (single-threaded) operation order draw identical faults.
    pub seed: u64,
    /// Permanent node losses: `(op_index, node)` pairs. When the global
    /// operation counter passes `op_index`, `node` is reported by
    /// [`FaultInjector::due_node_failures`] exactly once.
    pub fail_node_at: Vec<(u64, usize)>,
    /// Probability in `[0, 1]` that any instrumented operation fails
    /// with a transient error. Applied when no per-tier override
    /// matches.
    pub transient_prob: f64,
    /// Per-tier overrides for `transient_prob`; first match wins.
    pub tier_transient_prob: Vec<(Tier, f64)>,
    /// Latency added to every instrumented operation, in microseconds.
    /// Real `thread::sleep`, so keep it small in tests.
    pub op_latency_us: u64,
}

impl FaultConfig {
    /// Probability applying to an operation on `tier` (or the generic
    /// probability when the tier is unknown or has no override).
    fn prob_for(&self, tier: Option<Tier>) -> f64 {
        if let Some(t) = tier {
            for &(ot, p) in &self.tier_transient_prob {
                if ot == t {
                    return p;
                }
            }
        }
        self.transient_prob
    }
}

/// Deterministic, lock-free fault injector shared by the chain, KV,
/// and flush layers.
#[derive(Debug)]
pub struct FaultInjector {
    cfg: FaultConfig,
    /// Global operation counter; each instrumented call claims one
    /// index, which seeds that call's private RNG stream.
    ops: AtomicU64,
    /// `fail_node_at` sorted by op index; `next_failure` is the cursor
    /// over it, advanced by CAS so each failure fires exactly once.
    failures: Vec<(u64, usize)>,
    next_failure: AtomicUsize,
    counters: OnceLock<FaultCounters>,
}

impl FaultInjector {
    pub fn new(cfg: FaultConfig) -> Self {
        let mut failures = cfg.fail_node_at.clone();
        failures.sort_unstable();
        FaultInjector {
            cfg,
            ops: AtomicU64::new(0),
            failures,
            next_failure: AtomicUsize::new(0),
            counters: OnceLock::new(),
        }
    }

    /// Wire up the injected-fault counters. Idempotent; before this is
    /// called injections simply go uncounted.
    pub fn install_counters(&self, counters: FaultCounters) {
        let _ = self.counters.set(counters);
    }

    /// Operations instrumented so far.
    pub fn ops_seen(&self) -> u64 {
        self.ops.load(Ordering::Relaxed)
    }

    /// One instrumented operation: advance the op counter, apply the
    /// configured latency, and either succeed or return a
    /// [`SimError::Transient`] tagged with `site`.
    pub fn inject(&self, site: &'static str, tier: Option<Tier>) -> SimResult<()> {
        let op = self.ops.fetch_add(1, Ordering::Relaxed);
        if self.cfg.op_latency_us > 0 {
            std::thread::sleep(Duration::from_micros(self.cfg.op_latency_us));
            if let Some(c) = self.counters.get() {
                c.latency.inc();
            }
        }
        let prob = self.cfg.prob_for(tier);
        if prob > 0.0 {
            // A private stream per op index: deterministic in (seed, op)
            // and uncorrelated across consecutive ops.
            let draw = DetRng::seed(self.cfg.seed ^ op.wrapping_mul(OP_STREAM)).unit();
            if draw < prob {
                if let Some(c) = self.counters.get() {
                    c.transient.inc();
                }
                return Err(SimError::Transient {
                    site: site.to_string(),
                    attempt: 0,
                });
            }
        }
        Ok(())
    }

    /// Node losses whose op threshold has been reached since the last
    /// call. Each scheduled loss is returned exactly once, even with
    /// concurrent pollers (the cursor advances by CAS).
    pub fn due_node_failures(&self) -> Vec<usize> {
        let seen = self.ops.load(Ordering::Relaxed);
        let mut due = Vec::new();
        loop {
            let idx = self.next_failure.load(Ordering::Relaxed);
            match self.failures.get(idx) {
                Some(&(at, node)) if at <= seen => {
                    if self
                        .next_failure
                        .compare_exchange(idx, idx + 1, Ordering::Relaxed, Ordering::Relaxed)
                        .is_ok()
                    {
                        if let Some(c) = self.counters.get() {
                            c.node_loss.inc();
                        }
                        due.push(node);
                    }
                    // CAS failure: another poller claimed this entry;
                    // re-read the cursor and keep scanning.
                }
                _ => break,
            }
        }
        due
    }
}

/// Retry budget for transient faults, carried in
/// `UniviStorConfig::retry`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts (first try included). `1` disables retries.
    pub max_attempts: u64,
    /// Backoff before the first retry, in microseconds; doubles per
    /// subsequent retry.
    pub backoff_base_us: u64,
    /// Upper bound on any single backoff sleep, in microseconds.
    pub backoff_cap_us: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            backoff_base_us: 100,
            backoff_cap_us: 5_000,
        }
    }
}

impl RetryPolicy {
    /// Backoff before retry number `retry` (1-based), capped.
    fn backoff_us(&self, retry: u64) -> u64 {
        let shift = (retry - 1).min(63) as u32;
        // A doubling that would shift bits out of the base has certainly
        // passed any cap; `checked_shl` alone misses that (it only guards
        // the shift count, not value overflow).
        let grown = if shift >= self.backoff_base_us.leading_zeros() {
            u64::MAX
        } else {
            self.backoff_base_us << shift
        };
        grown.min(self.backoff_cap_us)
    }
}

/// Run `op`, retrying transient failures under `policy` with capped
/// exponential backoff. Non-transient errors pass straight through.
/// On exhaustion the transient error is returned with its `attempt`
/// count rewritten to the number of attempts actually made.
pub fn with_retries<T>(
    policy: &RetryPolicy,
    metrics: Option<&JobMetrics>,
    mut op: impl FnMut() -> SimResult<T>,
) -> SimResult<T> {
    let mut attempt: u64 = 0;
    loop {
        match op() {
            Ok(v) => return Ok(v),
            Err(SimError::Transient { site, .. }) => {
                attempt += 1;
                if attempt >= policy.max_attempts.max(1) {
                    if let Some(m) = metrics {
                        m.record_retry_exhausted();
                    }
                    return Err(SimError::Transient { site, attempt });
                }
                if let Some(m) = metrics {
                    m.record_retry();
                }
                let us = policy.backoff_us(attempt);
                if us > 0 {
                    std::thread::sleep(Duration::from_micros(us));
                }
            }
            Err(e) => return Err(e),
        }
    }
}

/// [`with_retries`] for operations returning the crate-level [`Error`]:
/// only transient sources are retried, and exhaustion rewrites the
/// embedded attempt count.
pub fn with_retries_ctx<T>(
    policy: &RetryPolicy,
    metrics: Option<&JobMetrics>,
    mut op: impl FnMut() -> Result<T, Error>,
) -> Result<T, Error> {
    let mut attempt: u64 = 0;
    loop {
        match op() {
            Ok(v) => return Ok(v),
            Err(e) if e.is_transient() => {
                attempt += 1;
                if attempt >= policy.max_attempts.max(1) {
                    if let Some(m) = metrics {
                        m.record_retry_exhausted();
                    }
                    return Err(e.with_attempts(attempt));
                }
                if let Some(m) = metrics {
                    m.record_retry();
                }
                let us = policy.backoff_us(attempt);
                if us > 0 {
                    std::thread::sleep(Duration::from_micros(us));
                }
            }
            Err(e) => return Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn always(prob: f64) -> FaultInjector {
        FaultInjector::new(FaultConfig {
            seed: 7,
            transient_prob: prob,
            ..FaultConfig::default()
        })
    }

    #[test]
    fn zero_probability_never_faults() {
        let inj = always(0.0);
        for _ in 0..1000 {
            inj.inject("noop", None).unwrap();
        }
        assert_eq!(inj.ops_seen(), 1000);
    }

    #[test]
    fn unit_probability_always_faults() {
        let inj = always(1.0);
        for _ in 0..100 {
            let err = inj.inject("chain_append", Some(Tier::Dram)).unwrap_err();
            match err {
                SimError::Transient { site, attempt } => {
                    assert_eq!(site, "chain_append");
                    assert_eq!(attempt, 0);
                }
                other => panic!("expected transient, got {other:?}"),
            }
        }
    }

    #[test]
    fn same_seed_same_fault_schedule() {
        let schedule = |seed: u64| -> Vec<bool> {
            let inj = FaultInjector::new(FaultConfig {
                seed,
                transient_prob: 0.3,
                ..FaultConfig::default()
            });
            (0..200).map(|_| inj.inject("x", None).is_err()).collect()
        };
        assert_eq!(schedule(42), schedule(42));
        assert_ne!(schedule(42), schedule(43), "different seeds should differ");
        let hits = schedule(42).iter().filter(|&&b| b).count();
        assert!((30..=90).contains(&hits), "p=0.3 over 200 draws: {hits}");
    }

    #[test]
    fn tier_override_beats_generic_probability() {
        let inj = FaultInjector::new(FaultConfig {
            seed: 1,
            transient_prob: 1.0,
            tier_transient_prob: vec![(Tier::Pfs, 0.0)],
            ..FaultConfig::default()
        });
        // PFS ops are exempt, everything else always faults.
        inj.inject("flush", Some(Tier::Pfs)).unwrap();
        assert!(inj.inject("append", Some(Tier::Dram)).is_err());
        assert!(inj.inject("append", None).is_err());
    }

    #[test]
    fn node_failures_fire_once_at_their_threshold() {
        let inj = FaultInjector::new(FaultConfig {
            seed: 0,
            fail_node_at: vec![(5, 1), (2, 0)],
            ..FaultConfig::default()
        });
        assert!(inj.due_node_failures().is_empty(), "no ops yet");
        for _ in 0..2 {
            inj.inject("w", None).unwrap();
        }
        assert_eq!(inj.due_node_failures(), vec![0]);
        assert!(inj.due_node_failures().is_empty(), "node 0 already fired");
        for _ in 0..3 {
            inj.inject("w", None).unwrap();
        }
        assert_eq!(inj.due_node_failures(), vec![1]);
        assert!(inj.due_node_failures().is_empty());
    }

    #[test]
    fn retries_absorb_a_bounded_fault_streak() {
        let mut failures_left = 2;
        let out = with_retries(&RetryPolicy::default(), None, || {
            if failures_left > 0 {
                failures_left -= 1;
                Err(SimError::Transient {
                    site: "kv".into(),
                    attempt: 0,
                })
            } else {
                Ok(99)
            }
        });
        assert_eq!(out.unwrap(), 99);
    }

    #[test]
    fn exhausted_retries_report_the_attempt_count() {
        let policy = RetryPolicy {
            max_attempts: 3,
            backoff_base_us: 0,
            backoff_cap_us: 0,
        };
        let mut calls = 0;
        let out: SimResult<()> = with_retries(&policy, None, || {
            calls += 1;
            Err(SimError::Transient {
                site: "chain_read".into(),
                attempt: 0,
            })
        });
        assert_eq!(calls, 3, "max_attempts bounds total tries");
        match out.unwrap_err() {
            SimError::Transient { site, attempt } => {
                assert_eq!(site, "chain_read");
                assert_eq!(attempt, 3);
            }
            other => panic!("expected transient, got {other:?}"),
        }
    }

    #[test]
    fn non_transient_errors_pass_straight_through() {
        let mut calls = 0;
        let out: SimResult<()> = with_retries(&RetryPolicy::default(), None, || {
            calls += 1;
            Err(SimError::InvalidConfig("permanent".into()))
        });
        assert_eq!(calls, 1);
        assert!(matches!(out.unwrap_err(), SimError::InvalidConfig(_)));
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let p = RetryPolicy {
            max_attempts: 10,
            backoff_base_us: 100,
            backoff_cap_us: 450,
        };
        assert_eq!(p.backoff_us(1), 100);
        assert_eq!(p.backoff_us(2), 200);
        assert_eq!(p.backoff_us(3), 400);
        assert_eq!(p.backoff_us(4), 450, "capped");
        assert_eq!(p.backoff_us(60), 450);
        assert_eq!(p.backoff_us(64), 450, "shift overflow saturates to cap");
    }
}
