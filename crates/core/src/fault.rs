//! Deterministic fault injection and retry machinery.
//!
//! UniviStor's resilience story needs failures it can rehearse: the
//! [`FaultInjector`] turns a seed plus a [`FaultConfig`] into a fully
//! reproducible fault schedule — permanent node losses at fixed
//! operation counts, transient per-tier I/O errors with a configured
//! probability, and optional per-operation latency. Every injection
//! decision is a pure function of `(seed, op_index)`, so a chaos run
//! replays bit-for-bit under the same seed regardless of which thread
//! happens to issue which operation first (the op index itself is a
//! single atomic counter, so interleaving shifts *which* op draws a
//! fault but a single-threaded workload is exactly reproducible).
//!
//! Transient faults surface as [`SimError::Transient`] and are meant to
//! be absorbed by [`with_retries`], a capped-exponential-backoff loop
//! driven by the [`RetryPolicy`] in the job config. Exhausted budgets
//! rewrite the error's `attempt` field so callers (and tests) can see
//! how hard the operation tried before giving up.
//!
//! The injector is deliberately lock-free: an `AtomicU64` op counter,
//! an `AtomicUsize` cursor over the sorted node-failure schedule, and a
//! `OnceLock` for the metric handles. When `UniviStorConfig::fault` is
//! `None` (the default) none of this is constructed and the hot path
//! pays only an `Option` check.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{OnceLock, RwLock};
use std::time::Duration;

use univistor_sim::rng::DetRng;
use univistor_sim::{Payload, SimError, SimResult};

use crate::error::Error;
use crate::metadata::ClientId;
use crate::metrics::{FaultCounters, JobMetrics};
use crate::va::{Tier, VirtualAddr};

/// Golden-ratio increment used to decorrelate per-op RNG streams.
const OP_STREAM: u64 = 0x9E37_79B9_7F4A_7C15;

/// Stream separator for silent-corruption draws: corruption uses its own
/// op counter *and* its own seed stream, so enabling it never perturbs
/// the transient-fault schedule of a given seed.
const CORRUPT_STREAM: u64 = 0xD1B5_4A32_D192_ED03;

/// Declarative fault schedule, carried in `UniviStorConfig::fault`.
///
/// All fields default to "no faults"; a config with `fault: Some(..)`
/// but every knob at zero behaves identically to `fault: None` except
/// for the per-op atomic increment.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultConfig {
    /// Seed for the injection RNG. Two runs with the same seed and the
    /// same (single-threaded) operation order draw identical faults.
    pub seed: u64,
    /// Permanent node losses: `(op_index, node)` pairs. When the global
    /// operation counter passes `op_index`, `node` is reported by
    /// [`FaultInjector::due_node_failures`] exactly once.
    pub fail_node_at: Vec<(u64, usize)>,
    /// Probability in `[0, 1]` that any instrumented operation fails
    /// with a transient error. Applied when no per-tier override
    /// matches.
    pub transient_prob: f64,
    /// Per-tier overrides for `transient_prob`; first match wins.
    pub tier_transient_prob: Vec<(Tier, f64)>,
    /// Latency added to every instrumented operation, in microseconds.
    /// Real `thread::sleep`, so keep it small in tests.
    pub op_latency_us: u64,
    /// Probability in `[0, 1]` that a freshly appended span lands
    /// silently corrupted: the bytes read back differ from the bytes
    /// written, with no error at write time. Detection is the integrity
    /// plane's job. Applied when no per-tier override matches.
    pub corrupt_prob: f64,
    /// Per-tier overrides for `corrupt_prob`; first match wins.
    pub tier_corrupt_prob: Vec<(Tier, f64)>,
}

impl FaultConfig {
    /// Probability applying to an operation on `tier` (or the generic
    /// probability when the tier is unknown or has no override).
    fn prob_for(&self, tier: Option<Tier>) -> f64 {
        if let Some(t) = tier {
            for &(ot, p) in &self.tier_transient_prob {
                if ot == t {
                    return p;
                }
            }
        }
        self.transient_prob
    }

    /// Silent-corruption probability for an append landing on `tier`.
    fn corrupt_prob_for(&self, tier: Tier) -> f64 {
        for &(ot, p) in &self.tier_corrupt_prob {
            if ot == tier {
                return p;
            }
        }
        self.corrupt_prob
    }

    /// Whether any corruption probability in the schedule is nonzero.
    fn corruption_possible(&self) -> bool {
        self.corrupt_prob > 0.0 || self.tier_corrupt_prob.iter().any(|&(_, p)| p > 0.0)
    }
}

/// One registered silent corruption: reads of `owner`'s chain that cover
/// absolute chain address `flip_at` observe `flip` XORed into that byte.
/// Spans are cleared when new data is appended over the same VA range —
/// the corruption lives in the *stored copy*, not the address.
#[derive(Debug, Clone, Copy)]
struct CorruptSpan {
    /// First corrupted-copy chain address.
    va: u64,
    /// Span length in bytes.
    len: u64,
    /// Absolute chain address of the flipped byte.
    flip_at: u64,
    /// Nonzero XOR mask applied to that byte.
    flip: u8,
}

/// Deterministic, lock-free fault injector shared by the chain, KV,
/// and flush layers.
#[derive(Debug)]
pub struct FaultInjector {
    cfg: FaultConfig,
    /// Global operation counter; each instrumented call claims one
    /// index, which seeds that call's private RNG stream.
    ops: AtomicU64,
    /// `fail_node_at` sorted by op index; `next_failure` is the cursor
    /// over it, advanced by CAS so each failure fires exactly once.
    failures: Vec<(u64, usize)>,
    next_failure: AtomicUsize,
    counters: OnceLock<FaultCounters>,
    /// Whether the schedule can ever draw a corruption (precomputed so
    /// the append hook is a plain bool check when it cannot).
    corruption_possible: bool,
    /// Corruption draw counter — separate from `ops` so enabling
    /// corruption never shifts the transient-fault draw sequence.
    corrupt_ops: AtomicU64,
    /// Registered corrupt spans per producer. Guarded by a lock, but the
    /// data path only touches it when `corrupt_count` is nonzero — a job
    /// with no live corruption pays one relaxed load per read/append.
    corrupted: RwLock<HashMap<ClientId, Vec<CorruptSpan>>>,
    corrupt_count: AtomicUsize,
}

impl FaultInjector {
    pub fn new(cfg: FaultConfig) -> Self {
        let mut failures = cfg.fail_node_at.clone();
        failures.sort_unstable();
        let corruption_possible = cfg.corruption_possible();
        FaultInjector {
            cfg,
            ops: AtomicU64::new(0),
            failures,
            next_failure: AtomicUsize::new(0),
            counters: OnceLock::new(),
            corruption_possible,
            corrupt_ops: AtomicU64::new(0),
            corrupted: RwLock::new(HashMap::new()),
            corrupt_count: AtomicUsize::new(0),
        }
    }

    /// Wire up the injected-fault counters. Idempotent; before this is
    /// called injections simply go uncounted.
    pub fn install_counters(&self, counters: FaultCounters) {
        let _ = self.counters.set(counters);
    }

    /// Operations instrumented so far.
    pub fn ops_seen(&self) -> u64 {
        self.ops.load(Ordering::Relaxed)
    }

    /// One instrumented operation: advance the op counter, apply the
    /// configured latency, and either succeed or return a
    /// [`SimError::Transient`] tagged with `site`.
    pub fn inject(&self, site: &'static str, tier: Option<Tier>) -> SimResult<()> {
        let op = self.ops.fetch_add(1, Ordering::Relaxed);
        if self.cfg.op_latency_us > 0 {
            std::thread::sleep(Duration::from_micros(self.cfg.op_latency_us));
            if let Some(c) = self.counters.get() {
                c.latency.inc();
            }
        }
        let prob = self.cfg.prob_for(tier);
        if prob > 0.0 {
            // A private stream per op index: deterministic in (seed, op)
            // and uncorrelated across consecutive ops.
            let draw = DetRng::seed(self.cfg.seed ^ op.wrapping_mul(OP_STREAM)).unit();
            if draw < prob {
                if let Some(c) = self.counters.get() {
                    c.transient.inc();
                }
                return Err(SimError::Transient {
                    site: site.to_string(),
                    attempt: 0,
                });
            }
        }
        Ok(())
    }

    /// Node losses whose op threshold has been reached since the last
    /// call. Each scheduled loss is returned exactly once, even with
    /// concurrent pollers (the cursor advances by CAS).
    pub fn due_node_failures(&self) -> Vec<usize> {
        let seen = self.ops.load(Ordering::Relaxed);
        let mut due = Vec::new();
        loop {
            let idx = self.next_failure.load(Ordering::Relaxed);
            match self.failures.get(idx) {
                Some(&(at, node)) if at <= seen => {
                    if self
                        .next_failure
                        .compare_exchange(idx, idx + 1, Ordering::Relaxed, Ordering::Relaxed)
                        .is_ok()
                    {
                        if let Some(c) = self.counters.get() {
                            c.node_loss.inc();
                        }
                        due.push(node);
                    }
                    // CAS failure: another poller claimed this entry;
                    // re-read the cursor and keep scanning.
                }
                _ => break,
            }
        }
        due
    }

    /// Append hook: new data landed at `[va, va + len)` of `owner`'s
    /// chain on `tier`. Clears any stale corrupt span the fresh bytes
    /// overwrite (corruption belongs to a stored copy, and that copy is
    /// gone), then draws the tier's silent-corruption probability and,
    /// on a hit, registers a deterministic one-byte flip inside the span.
    /// The draw stream is independent of the transient-fault stream, so
    /// two runs with the same seed corrupt the same appends regardless
    /// of the transient schedule.
    pub fn on_append(&self, owner: ClientId, va: VirtualAddr, len: u64, tier: Tier) {
        if self.corrupt_count.load(Ordering::Relaxed) > 0 {
            self.clear_overlapping(owner, va.0, len);
        }
        if !self.corruption_possible || len == 0 {
            return;
        }
        let prob = self.cfg.corrupt_prob_for(tier);
        if prob <= 0.0 {
            return;
        }
        let op = self.corrupt_ops.fetch_add(1, Ordering::Relaxed);
        let mut rng = DetRng::seed(self.cfg.seed ^ CORRUPT_STREAM ^ op.wrapping_mul(OP_STREAM));
        if rng.unit() < prob {
            let flip_at = va.0 + rng.below(len.min(usize::MAX as u64) as usize) as u64;
            // Any nonzero mask corrupts; `| 1` guards the zero draw.
            let flip = (rng.below(256) as u8) | 1;
            self.register(
                owner,
                CorruptSpan {
                    va: va.0,
                    len,
                    flip_at,
                    flip,
                },
            );
        }
    }

    /// Targeted corruption op (tests, chaos drills): unconditionally
    /// corrupt the stored copy at `[va, va + len)` of `owner`'s chain by
    /// flipping its first byte.
    pub fn corrupt_span(&self, owner: ClientId, va: VirtualAddr, len: u64) {
        if len == 0 {
            return;
        }
        self.clear_overlapping(owner, va.0, len);
        self.register(
            owner,
            CorruptSpan {
                va: va.0,
                len,
                flip_at: va.0,
                flip: 0xFF,
            },
        );
    }

    /// Read hook: apply every registered flip that falls inside a read
    /// of `[va, va + payload.len())` from `owner`'s chain. One relaxed
    /// load when nothing is registered.
    pub fn corrupt_read(&self, owner: ClientId, va: VirtualAddr, payload: Payload) -> Payload {
        if self.corrupt_count.load(Ordering::Relaxed) == 0 {
            return payload;
        }
        let len = payload.len();
        let flips: Vec<(u64, u8)> = {
            let map = self.corrupted.read().expect("corrupt registry poisoned");
            match map.get(&owner) {
                None => return payload,
                Some(spans) => spans
                    .iter()
                    .filter(|s| s.flip_at >= va.0 && s.flip_at - va.0 < len)
                    .map(|s| (s.flip_at - va.0, s.flip))
                    .collect(),
            }
        };
        if flips.is_empty() {
            return payload;
        }
        let mut bytes = Vec::with_capacity(len as usize);
        payload.materialize_into(&mut bytes);
        for (off, flip) in flips {
            bytes[off as usize] ^= flip;
        }
        Payload::from_bytes(bytes)
    }

    /// Live corrupt spans (registered and not yet overwritten).
    pub fn corrupt_spans_live(&self) -> usize {
        self.corrupt_count.load(Ordering::Relaxed)
    }

    fn register(&self, owner: ClientId, span: CorruptSpan) {
        self.corrupted
            .write()
            .expect("corrupt registry poisoned")
            .entry(owner)
            .or_default()
            .push(span);
        self.corrupt_count.fetch_add(1, Ordering::Relaxed);
        if let Some(c) = self.counters.get() {
            c.corruption.inc();
        }
    }

    fn clear_overlapping(&self, owner: ClientId, va: u64, len: u64) {
        let mut map = self.corrupted.write().expect("corrupt registry poisoned");
        if let Some(spans) = map.get_mut(&owner) {
            let before = spans.len();
            spans.retain(|s| s.va + s.len <= va || va + len <= s.va);
            let removed = before - spans.len();
            if removed > 0 {
                self.corrupt_count.fetch_sub(removed, Ordering::Relaxed);
            }
            if spans.is_empty() {
                map.remove(&owner);
            }
        }
    }
}

/// Retry budget for transient faults, carried in
/// `UniviStorConfig::retry`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts (first try included). `1` disables retries.
    pub max_attempts: u64,
    /// Backoff before the first retry, in microseconds; doubles per
    /// subsequent retry.
    pub backoff_base_us: u64,
    /// Upper bound on any single backoff sleep, in microseconds.
    pub backoff_cap_us: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            backoff_base_us: 100,
            backoff_cap_us: 5_000,
        }
    }
}

impl RetryPolicy {
    /// Backoff before retry number `retry` (1-based), capped.
    fn backoff_us(&self, retry: u64) -> u64 {
        let shift = (retry - 1).min(63) as u32;
        // A doubling that would shift bits out of the base has certainly
        // passed any cap; `checked_shl` alone misses that (it only guards
        // the shift count, not value overflow).
        let grown = if shift >= self.backoff_base_us.leading_zeros() {
            u64::MAX
        } else {
            self.backoff_base_us << shift
        };
        grown.min(self.backoff_cap_us)
    }
}

/// Run `op`, retrying transient failures under `policy` with capped
/// exponential backoff. Non-transient errors pass straight through.
/// On exhaustion the transient error is returned with its `attempt`
/// count rewritten to the number of attempts actually made.
pub fn with_retries<T>(
    policy: &RetryPolicy,
    metrics: Option<&JobMetrics>,
    mut op: impl FnMut() -> SimResult<T>,
) -> SimResult<T> {
    let mut attempt: u64 = 0;
    loop {
        match op() {
            Ok(v) => return Ok(v),
            Err(SimError::Transient { site, .. }) => {
                attempt += 1;
                if attempt >= policy.max_attempts.max(1) {
                    if let Some(m) = metrics {
                        m.record_retry_exhausted();
                    }
                    return Err(SimError::Transient { site, attempt });
                }
                if let Some(m) = metrics {
                    m.record_retry(&site);
                }
                let us = policy.backoff_us(attempt);
                if us > 0 {
                    std::thread::sleep(Duration::from_micros(us));
                }
            }
            Err(e) => return Err(e),
        }
    }
}

/// [`with_retries`] for operations returning the crate-level [`Error`]:
/// only transient sources are retried, and exhaustion rewrites the
/// embedded attempt count.
pub fn with_retries_ctx<T>(
    policy: &RetryPolicy,
    metrics: Option<&JobMetrics>,
    mut op: impl FnMut() -> Result<T, Error>,
) -> Result<T, Error> {
    let mut attempt: u64 = 0;
    loop {
        match op() {
            Ok(v) => return Ok(v),
            Err(e) if e.is_transient() => {
                attempt += 1;
                if attempt >= policy.max_attempts.max(1) {
                    if let Some(m) = metrics {
                        m.record_retry_exhausted();
                    }
                    return Err(e.with_attempts(attempt));
                }
                if let Some(m) = metrics {
                    m.record_retry(e.transient_site().unwrap_or(""));
                }
                let us = policy.backoff_us(attempt);
                if us > 0 {
                    std::thread::sleep(Duration::from_micros(us));
                }
            }
            Err(e) => return Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn always(prob: f64) -> FaultInjector {
        FaultInjector::new(FaultConfig {
            seed: 7,
            transient_prob: prob,
            ..FaultConfig::default()
        })
    }

    #[test]
    fn zero_probability_never_faults() {
        let inj = always(0.0);
        for _ in 0..1000 {
            inj.inject("noop", None).unwrap();
        }
        assert_eq!(inj.ops_seen(), 1000);
    }

    #[test]
    fn unit_probability_always_faults() {
        let inj = always(1.0);
        for _ in 0..100 {
            let err = inj.inject("chain_append", Some(Tier::Dram)).unwrap_err();
            match err {
                SimError::Transient { site, attempt } => {
                    assert_eq!(site, "chain_append");
                    assert_eq!(attempt, 0);
                }
                other => panic!("expected transient, got {other:?}"),
            }
        }
    }

    #[test]
    fn same_seed_same_fault_schedule() {
        let schedule = |seed: u64| -> Vec<bool> {
            let inj = FaultInjector::new(FaultConfig {
                seed,
                transient_prob: 0.3,
                ..FaultConfig::default()
            });
            (0..200).map(|_| inj.inject("x", None).is_err()).collect()
        };
        assert_eq!(schedule(42), schedule(42));
        assert_ne!(schedule(42), schedule(43), "different seeds should differ");
        let hits = schedule(42).iter().filter(|&&b| b).count();
        assert!((30..=90).contains(&hits), "p=0.3 over 200 draws: {hits}");
    }

    #[test]
    fn tier_override_beats_generic_probability() {
        let inj = FaultInjector::new(FaultConfig {
            seed: 1,
            transient_prob: 1.0,
            tier_transient_prob: vec![(Tier::Pfs, 0.0)],
            ..FaultConfig::default()
        });
        // PFS ops are exempt, everything else always faults.
        inj.inject("flush", Some(Tier::Pfs)).unwrap();
        assert!(inj.inject("append", Some(Tier::Dram)).is_err());
        assert!(inj.inject("append", None).is_err());
    }

    #[test]
    fn node_failures_fire_once_at_their_threshold() {
        let inj = FaultInjector::new(FaultConfig {
            seed: 0,
            fail_node_at: vec![(5, 1), (2, 0)],
            ..FaultConfig::default()
        });
        assert!(inj.due_node_failures().is_empty(), "no ops yet");
        for _ in 0..2 {
            inj.inject("w", None).unwrap();
        }
        assert_eq!(inj.due_node_failures(), vec![0]);
        assert!(inj.due_node_failures().is_empty(), "node 0 already fired");
        for _ in 0..3 {
            inj.inject("w", None).unwrap();
        }
        assert_eq!(inj.due_node_failures(), vec![1]);
        assert!(inj.due_node_failures().is_empty());
    }

    #[test]
    fn retries_absorb_a_bounded_fault_streak() {
        let mut failures_left = 2;
        let out = with_retries(&RetryPolicy::default(), None, || {
            if failures_left > 0 {
                failures_left -= 1;
                Err(SimError::Transient {
                    site: "kv".into(),
                    attempt: 0,
                })
            } else {
                Ok(99)
            }
        });
        assert_eq!(out.unwrap(), 99);
    }

    #[test]
    fn exhausted_retries_report_the_attempt_count() {
        let policy = RetryPolicy {
            max_attempts: 3,
            backoff_base_us: 0,
            backoff_cap_us: 0,
        };
        let mut calls = 0;
        let out: SimResult<()> = with_retries(&policy, None, || {
            calls += 1;
            Err(SimError::Transient {
                site: "chain_read".into(),
                attempt: 0,
            })
        });
        assert_eq!(calls, 3, "max_attempts bounds total tries");
        match out.unwrap_err() {
            SimError::Transient { site, attempt } => {
                assert_eq!(site, "chain_read");
                assert_eq!(attempt, 3);
            }
            other => panic!("expected transient, got {other:?}"),
        }
    }

    #[test]
    fn non_transient_errors_pass_straight_through() {
        let mut calls = 0;
        let out: SimResult<()> = with_retries(&RetryPolicy::default(), None, || {
            calls += 1;
            Err(SimError::InvalidConfig("permanent".into()))
        });
        assert_eq!(calls, 1);
        assert!(matches!(out.unwrap_err(), SimError::InvalidConfig(_)));
    }

    #[test]
    fn corruption_draws_are_seeded_and_independent_of_transients() {
        let schedule = |seed: u64, transient: f64| -> Vec<bool> {
            let inj = FaultInjector::new(FaultConfig {
                seed,
                transient_prob: transient,
                corrupt_prob: 0.3,
                ..FaultConfig::default()
            });
            let owner = ClientId::new(0, 0);
            (0..200u64)
                .map(|i| {
                    let before = inj.corrupt_spans_live();
                    inj.on_append(owner, VirtualAddr(i * 64), 64, Tier::Dram);
                    inj.corrupt_spans_live() > before
                })
                .collect()
        };
        assert_eq!(schedule(42, 0.0), schedule(42, 0.0));
        // Same seed, different transient schedule → same corruptions.
        assert_eq!(schedule(42, 0.0), schedule(42, 0.5));
        assert_ne!(schedule(42, 0.0), schedule(43, 0.0));
        let hits = schedule(42, 0.0).iter().filter(|&&b| b).count();
        assert!((30..=90).contains(&hits), "p=0.3 over 200 appends: {hits}");
    }

    #[test]
    fn corrupt_read_flips_exactly_one_byte_in_span() {
        let inj = always(0.0);
        let owner = ClientId::new(0, 3);
        let clean = Payload::pattern(9, 256);
        // Nothing registered: payload passes through untouched.
        assert!(inj
            .corrupt_read(owner, VirtualAddr(1000), clean.clone())
            .content_eq(&clean));
        inj.corrupt_span(owner, VirtualAddr(1000), 256);
        let dirty = inj.corrupt_read(owner, VirtualAddr(1000), clean.clone());
        assert!(!dirty.content_eq(&clean));
        let diffs = (0..256u64)
            .filter(|&i| dirty.byte_at(i) != clean.byte_at(i))
            .count();
        assert_eq!(diffs, 1, "targeted op flips the first byte only");
        assert_ne!(dirty.byte_at(0), clean.byte_at(0));
        // A read of a disjoint span is unaffected.
        let other = Payload::pattern(9, 64);
        assert!(inj
            .corrupt_read(owner, VirtualAddr(2000), other.clone())
            .content_eq(&other));
        // A different producer's chain is unaffected.
        assert!(inj
            .corrupt_read(ClientId::new(0, 4), VirtualAddr(1000), clean.clone())
            .content_eq(&clean));
    }

    #[test]
    fn overwriting_appends_clear_stale_corruption() {
        let inj = always(0.0);
        let owner = ClientId::new(1, 0);
        inj.corrupt_span(owner, VirtualAddr(500), 100);
        assert_eq!(inj.corrupt_spans_live(), 1);
        // Fresh data over the same VA range: the corrupt copy is gone.
        inj.on_append(owner, VirtualAddr(500), 100, Tier::Dram);
        assert_eq!(inj.corrupt_spans_live(), 0);
        let p = Payload::pattern(1, 100);
        assert!(inj
            .corrupt_read(owner, VirtualAddr(500), p.clone())
            .content_eq(&p));
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let p = RetryPolicy {
            max_attempts: 10,
            backoff_base_us: 100,
            backoff_cap_us: 450,
        };
        assert_eq!(p.backoff_us(1), 100);
        assert_eq!(p.backoff_us(2), 200);
        assert_eq!(p.backoff_us(3), 400);
        assert_eq!(p.backoff_us(4), 450, "capped");
        assert_eq!(p.backoff_us(60), 450);
        assert_eq!(p.backoff_us(64), 450, "shift overflow saturates to cap");
    }
}
