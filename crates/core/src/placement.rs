//! Distributed and Hierarchical data Placement — DHP (§II-B1, Fig. 2).
//!
//! Each client process owns a **chain of log files**, one per storage
//! layer, fastest first. A segment goes to the first layer whose log still
//! has room; when a log's allocated space depletes, subsequent segments
//! spill to the next layer, repeating down to the destination layer
//! (typically the PFS). This turns the shared-write pattern into
//! file-per-process writes and uses the capacity of every layer.
//!
//! Log capacities follow the paper's `c/p` rule: a layer of capacity `c`
//! shared by `p` processes gives each process a log of `c/p` — where for
//! node-local layers `c`/`p` are the node's capacity and the processes on
//! that node, and for shared layers the totals across the job.

use crate::config::JobGeometry;
use crate::fault::FaultInjector;
use crate::log::LogFile;
use crate::metadata::ClientId;
use crate::va::{Tier, TierMap, VirtualAddr};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::{Arc, RwLock};
use univistor_sim::{Payload, SimError, SimResult};

/// Where an appended segment landed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlacedSegment {
    /// Layer index within the chain.
    pub layer: usize,
    /// The layer's tier.
    pub tier: Tier,
    /// Virtual address (Eq. 1).
    pub va: VirtualAddr,
    /// Segment length.
    pub len: u64,
}

impl PlacedSegment {
    /// True when the DHP could not keep this segment in the chain's top
    /// layer and spilled it down the hierarchy.
    pub fn spilled(&self) -> bool {
        self.layer > 0
    }
}

/// One process's cross-layer log chain.
#[derive(Debug)]
pub struct ProcChain {
    tiers: TierMap,
    logs: Vec<LogFile>,
}

impl ProcChain {
    /// Build a chain from ordered per-process (tier, capacity) pairs.
    /// Capacities are truncated to whole chunks; the TierMap reflects the
    /// truncated (actually addressable) capacities so VAs stay dense.
    pub fn new(layer_caps: Vec<(Tier, u64)>, chunk_size: u64) -> SimResult<Self> {
        let mut logs = Vec::with_capacity(layer_caps.len());
        let mut truncated = Vec::with_capacity(layer_caps.len());
        for (tier, cap) in layer_caps {
            let log = LogFile::new(cap, chunk_size)?;
            let addressable = if cap == u64::MAX {
                u64::MAX
            } else {
                log.capacity()
            };
            truncated.push((tier, addressable));
            logs.push(log);
        }
        Ok(ProcChain {
            tiers: TierMap::new(truncated),
            logs,
        })
    }

    /// The chain's tier map (for VA decoding elsewhere).
    pub fn tiers(&self) -> &TierMap {
        &self.tiers
    }

    /// Append one segment, spilling to the first layer with room.
    pub fn append(&mut self, payload: Payload) -> SimResult<PlacedSegment> {
        self.append_from(0, payload)
    }

    /// Append one segment considering only layers `min_layer` and below —
    /// the background tiering controller's targeted placement: a spill
    /// pass moving data *off* layer `l` appends from `l + 1`, so the copy
    /// can never land back on the tier being relieved. `min_layer` is
    /// clamped to the final (unbounded) layer.
    pub fn append_from(&mut self, min_layer: usize, payload: Payload) -> SimResult<PlacedSegment> {
        let len = payload.len();
        let last = self.logs.len() - 1;
        let first = min_layer.min(last);
        for (layer, log) in self.logs.iter_mut().enumerate().skip(first) {
            if layer == last || log.fits(len) {
                let addr = log.append(payload)?;
                return Ok(PlacedSegment {
                    layer,
                    tier: self.tiers.tier(layer),
                    va: self.tiers.encode(layer, addr.0),
                    len,
                });
            }
        }
        unreachable!("loop always reaches the final layer")
    }

    /// Read `len` bytes at `va`.
    pub fn read(&self, va: VirtualAddr, len: u64) -> SimResult<Payload> {
        let (layer, _, addr) = self.tiers.decode(va);
        self.logs[layer].read(crate::log::LogAddr(addr), len)
    }

    /// Release `len` bytes at `va` (overwritten or flushed data).
    pub fn release(&mut self, va: VirtualAddr, len: u64) {
        let (layer, _, addr) = self.tiers.decode(va);
        self.logs[layer].release(crate::log::LogAddr(addr), len);
    }

    /// Live bytes per layer.
    pub fn live_by_layer(&self) -> Vec<(Tier, u64)> {
        self.logs
            .iter()
            .enumerate()
            .map(|(i, l)| (self.tiers.tier(i), l.live_bytes()))
            .collect()
    }

    /// `(tier, live bytes, usable capacity)` per layer, in chain order —
    /// the tiering controller's watermark probe. The final layer's
    /// capacity saturates at `u64::MAX` (unbounded).
    pub fn layer_usage(&self) -> Vec<(Tier, u64, u64)> {
        self.logs
            .iter()
            .enumerate()
            .map(|(i, l)| (self.tiers.tier(i), l.live_bytes(), l.capacity()))
            .collect()
    }

    /// Layers in the chain.
    pub fn n_layers(&self) -> usize {
        self.logs.len()
    }

    /// The tier a VA resides on.
    pub fn tier_of(&self, va: VirtualAddr) -> Tier {
        self.tiers.decode(va).1
    }

    /// Total live bytes across layers.
    pub fn live_bytes(&self) -> u64 {
        self.logs.iter().map(LogFile::live_bytes).sum()
    }
}

/// The job's set of per-client log chains, each behind its own lock so
/// different clients append/read/release concurrently — DHP's whole point
/// (writes never cross clients). The map itself is read-mostly (a chain is
/// inserted once per client at first open) and guarded by an `RwLock`;
/// per-chain locks nest strictly inside the map lock and at most one chain
/// lock is held at a time (replica appends and displacement releases take
/// the owners' locks sequentially, never together).
#[derive(Debug, Default)]
pub struct ChainSet {
    chains: RwLock<HashMap<ClientId, Arc<RwLock<ProcChain>>>>,
    /// Fault injector shared with the job; `None` (the default) costs the
    /// data ops only this `Option` check.
    injector: Option<Arc<FaultInjector>>,
}

impl ChainSet {
    /// An empty set.
    pub fn new() -> Self {
        ChainSet::default()
    }

    /// Install the fault injector (at job construction, before the set is
    /// shared). Chain appends and reads then draw from its schedule.
    pub fn set_injector(&mut self, injector: Arc<FaultInjector>) {
        self.injector = Some(injector);
    }

    /// Corruption registration hook: a piece landed (and its append draw
    /// passed), so the injector may mark the stored copy silently corrupt
    /// — and must clear stale corruption the fresh bytes overwrote.
    fn note_append(&self, client: ClientId, p: &PlacedSegment) {
        if let Some(inj) = &self.injector {
            inj.on_append(client, p.va, p.len, p.tier);
        }
    }

    /// Corruption application hook: flips registered corrupt bytes into
    /// a payload read from `client`'s chain at `va`.
    fn corrupt(&self, client: ClientId, va: VirtualAddr, payload: Payload) -> Payload {
        match &self.injector {
            Some(inj) => inj.corrupt_read(client, va, payload),
            None => payload,
        }
    }

    fn inject(&self, site: &'static str, tier: Tier) -> SimResult<()> {
        match &self.injector {
            Some(inj) => inj.inject(site, Some(tier)),
            None => Ok(()),
        }
    }

    /// True when `client` already owns a chain.
    pub fn contains(&self, client: ClientId) -> bool {
        self.read_map().contains_key(&client)
    }

    /// Number of chains.
    pub fn len(&self) -> usize {
        self.read_map().len()
    }

    /// True when no client owns a chain yet.
    pub fn is_empty(&self) -> bool {
        self.read_map().is_empty()
    }

    /// Every client owning a chain, sorted for deterministic iteration
    /// (the tiering passes enumerate chains per node through this).
    pub fn clients(&self) -> Vec<ClientId> {
        let mut out: Vec<ClientId> = self.read_map().keys().copied().collect();
        out.sort();
        out
    }

    fn read_map(
        &self,
    ) -> std::sync::RwLockReadGuard<'_, HashMap<ClientId, Arc<RwLock<ProcChain>>>> {
        self.chains.read().expect("chain map poisoned")
    }

    fn chain(&self, client: ClientId) -> SimResult<Arc<RwLock<ProcChain>>> {
        self.read_map()
            .get(&client)
            .cloned()
            .ok_or_else(|| SimError::InvalidConfig(format!("no chain for producer {client:?}")))
    }

    /// Insert `client`'s chain if absent, building it with `make`.
    pub fn ensure(
        &self,
        client: ClientId,
        make: impl FnOnce() -> SimResult<ProcChain>,
    ) -> SimResult<()> {
        if self.contains(client) {
            return Ok(());
        }
        let chain = make()?;
        let mut map = self.chains.write().expect("chain map poisoned");
        map.entry(client)
            .or_insert_with(|| Arc::new(RwLock::new(chain)));
        Ok(())
    }

    /// Append one segment to `client`'s chain (exclusive chain lock).
    /// An injected transient fault rolls the placement back, so a failed
    /// append leaves the chain unchanged and is safe to retry.
    pub fn append(&self, client: ClientId, payload: Payload) -> SimResult<PlacedSegment> {
        let chain = self.chain(client)?;
        let mut chain = chain.write().expect("chain poisoned");
        let placed = chain.append(payload)?;
        if let Err(e) = self.inject("chain_append", placed.tier) {
            chain.release(placed.va, placed.len);
            return Err(e);
        }
        self.note_append(client, &placed);
        Ok(placed)
    }

    /// Append a run of segments to `client`'s chain under ONE exclusive
    /// chain-lock acquisition — the batched write pipeline's piece run,
    /// versus one acquisition per piece through [`append`](Self::append).
    /// Placement is identical to appending the payloads one at a time. On
    /// error every segment already placed is rolled back (released) before
    /// returning, so a failed batch leaves the chain unchanged.
    pub fn append_many(
        &self,
        client: ClientId,
        payloads: Vec<Payload>,
    ) -> SimResult<Vec<PlacedSegment>> {
        let chain = self.chain(client)?;
        let mut chain = chain.write().expect("chain poisoned");
        let mut placed = Vec::with_capacity(payloads.len());
        for payload in payloads {
            // Each placed piece is one instrumented operation; a transient
            // fault mid-run aborts (and rolls back) the whole batch,
            // mirroring a real mid-batch I/O error.
            let appended = match chain.append(payload) {
                Ok(p) => match self.inject("chain_append", p.tier) {
                    Ok(()) => Ok(p),
                    Err(e) => {
                        chain.release(p.va, p.len);
                        Err(e)
                    }
                },
                Err(e) => Err(e),
            };
            match appended {
                Ok(p) => placed.push(p),
                Err(e) => {
                    for p in &placed {
                        chain.release(p.va, p.len);
                    }
                    return Err(e);
                }
            }
        }
        // Corruption registration only once the whole batch has stuck —
        // rolled-back pieces never existed.
        for p in &placed {
            self.note_append(client, p);
        }
        Ok(placed)
    }

    /// [`append_many`](Self::append_many) restricted to layers `min_layer`
    /// and below — the tiering controller's migration append. Same single
    /// exclusive-lock acquisition, same per-piece fault instrumentation,
    /// same full-batch rollback on error.
    pub fn append_many_from(
        &self,
        client: ClientId,
        min_layer: usize,
        payloads: Vec<Payload>,
    ) -> SimResult<Vec<PlacedSegment>> {
        let chain = self.chain(client)?;
        let mut chain = chain.write().expect("chain poisoned");
        let mut placed = Vec::with_capacity(payloads.len());
        for payload in payloads {
            let appended = match chain.append_from(min_layer, payload) {
                Ok(p) => match self.inject("chain_append", p.tier) {
                    Ok(()) => Ok(p),
                    Err(e) => {
                        chain.release(p.va, p.len);
                        Err(e)
                    }
                },
                Err(e) => Err(e),
            };
            match appended {
                Ok(p) => placed.push(p),
                Err(e) => {
                    for p in &placed {
                        chain.release(p.va, p.len);
                    }
                    return Err(e);
                }
            }
        }
        for p in &placed {
            self.note_append(client, p);
        }
        Ok(placed)
    }

    /// Read `len` bytes at `va` of `client`'s chain plus the tier they
    /// reside on. Takes only shared locks — concurrent readers of
    /// different (or the same) chains never block each other.
    pub fn read_at(
        &self,
        client: ClientId,
        va: VirtualAddr,
        len: u64,
    ) -> SimResult<(Payload, Tier)> {
        let chain = self.chain(client)?;
        let chain = chain.read().expect("chain poisoned");
        let payload = chain.read(va, len)?;
        let tier = chain.tier_of(va);
        self.inject("chain_read", tier)?;
        Ok((self.corrupt(client, va, payload), tier))
    }

    /// Read every `(va, len)` request from `client`'s chain under a
    /// **single** shared lock acquisition — the batched read pipeline's
    /// grouped fetch, mirroring `append_many` on the write side. Results
    /// come back in request order.
    pub fn read_at_many(
        &self,
        client: ClientId,
        requests: &[(VirtualAddr, u64)],
    ) -> SimResult<Vec<(Payload, Tier)>> {
        let chain = self.chain(client)?;
        let chain = chain.read().expect("chain poisoned");
        requests
            .iter()
            .map(|&(va, len)| {
                let payload = chain.read(va, len)?;
                let tier = chain.tier_of(va);
                self.inject("chain_read", tier)?;
                Ok((self.corrupt(client, va, payload), tier))
            })
            .collect()
    }

    /// Release `len` bytes at `va` of `client`'s chain. A missing chain is
    /// a no-op (the displaced owner may never have connected — e.g. a
    /// replica whose buddy is gone).
    pub fn release(&self, client: ClientId, va: VirtualAddr, len: u64) {
        if let Ok(chain) = self.chain(client) {
            chain.write().expect("chain poisoned").release(va, len);
        }
    }

    /// Release a run of `(owner, va, len)` spans, taking each owner's chain
    /// lock once per consecutive same-owner group (callers sort spans by
    /// owner so each chain costs one acquisition). Missing chains are
    /// skipped, as for [`release`](Self::release). Releases within a chain
    /// happen in input order. Returns the number of chain-lock acquisitions
    /// taken.
    pub fn release_many(&self, spans: &[(ClientId, VirtualAddr, u64)]) -> u64 {
        let mut acquisitions = 0u64;
        let mut i = 0;
        while i < spans.len() {
            let client = spans[i].0;
            let mut j = i;
            while j < spans.len() && spans[j].0 == client {
                j += 1;
            }
            if let Ok(chain) = self.chain(client) {
                let mut chain = chain.write().expect("chain poisoned");
                acquisitions += 1;
                for &(_, va, len) in &spans[i..j] {
                    chain.release(va, len);
                }
            }
            i = j;
        }
        acquisitions
    }

    /// Aggregate live bytes per tier across every chain (shared locks).
    pub fn live_by_tier(&self) -> BTreeMap<Tier, u64> {
        let mut usage = BTreeMap::new();
        for chain in self.read_map().values() {
            let chain = chain.read().expect("chain poisoned");
            for (tier, bytes) in chain.live_by_layer() {
                *usage.entry(tier).or_insert(0) += bytes;
            }
        }
        usage
    }

    /// Total live bytes across all chains.
    pub fn live_bytes(&self) -> u64 {
        self.read_map()
            .values()
            .map(|c| c.read().expect("chain poisoned").live_bytes())
            .sum()
    }

    /// Run `f` with shared access to `client`'s chain.
    ///
    /// Acquisition avoids std `RwLock`'s writer-preferring blocking path:
    /// `try_read` with a bounded spin, then a yielding loop. A queued
    /// writer therefore never wedges a would-be reader behind it while an
    /// existing shared view is held (the writer itself still waits its
    /// turn, but readers keep flowing — see
    /// `UniviStorJob::with_shared_read_view`).
    pub fn with<R>(&self, client: ClientId, f: impl FnOnce(&ProcChain) -> R) -> SimResult<R> {
        let chain = self.chain(client)?;
        let mut spins = 0u32;
        loop {
            match chain.try_read() {
                Ok(chain) => return Ok(f(&chain)),
                Err(std::sync::TryLockError::Poisoned(_)) => panic!("chain poisoned"),
                Err(std::sync::TryLockError::WouldBlock) => {
                    if spins < 64 {
                        spins += 1;
                        std::hint::spin_loop();
                    } else {
                        std::thread::yield_now();
                    }
                }
            }
        }
    }

    /// Consume the set into its plain `(client, chain)` pairs — the
    /// partitioned runtime's checkout disassembly. Panics if any chain is
    /// still shared (checkout serializes all access, so none is).
    pub(crate) fn into_chain_list(self) -> Vec<(ClientId, ProcChain)> {
        self.chains
            .into_inner()
            .expect("chain map poisoned")
            .into_iter()
            .map(|(c, chain)| {
                let chain =
                    Arc::try_unwrap(chain).expect("chain still shared during checkout disassembly");
                (c, chain.into_inner().expect("chain poisoned"))
            })
            .collect()
    }
}

impl FromIterator<(ClientId, ProcChain)> for ChainSet {
    fn from_iter<I: IntoIterator<Item = (ClientId, ProcChain)>>(iter: I) -> Self {
        ChainSet {
            chains: RwLock::new(
                iter.into_iter()
                    .map(|(c, chain)| (c, Arc::new(RwLock::new(chain))))
                    .collect(),
            ),
            injector: None,
        }
    }
}

/// The first replication buddy for `client` whose node is healthy: walk
/// the ranks one node-stride at a time (the classic buddy is the first
/// hop) and skip the client's own node and every failed node. `None`
/// when no healthy off-node buddy exists (single-node jobs, or every
/// other node failed) — the caller then writes unreplicated, exactly as
/// a single-node job always has.
pub fn healthy_buddy(
    geometry: &JobGeometry,
    failed: &HashSet<usize>,
    client: ClientId,
) -> Option<ClientId> {
    let total = geometry.total_procs() as u32;
    let own_node = geometry.node_of_rank(client.rank as usize);
    for hop in 1..geometry.nodes {
        let rank = (client.rank + (hop * geometry.procs_per_node) as u32) % total;
        let node = geometry.node_of_rank(rank as usize);
        if node != own_node && !failed.contains(&node) {
            return Some(ClientId::new(client.app, rank));
        }
    }
    None
}

/// Compute the per-process log capacity of each layer for one client,
/// applying the `c/p` rule (§II-B1).
///
/// * DRAM: node cache capacity / client processes on the node;
/// * node-local SSD (when present): node SSD capacity / processes on the
///   node;
/// * shared burst buffer: total BB capacity / total client processes;
/// * PFS: unbounded.
pub fn paper_layer_caps(
    dram_cache_per_node: u64,
    procs_per_node: usize,
    bb_total: u64,
    total_procs: usize,
) -> Vec<(Tier, u64)> {
    layer_caps_with_node_local(
        dram_cache_per_node,
        None,
        procs_per_node,
        bb_total,
        total_procs,
    )
}

/// The full four-layer variant of the `c/p` rule, with an optional
/// node-local SSD layer between DRAM and the shared burst buffer.
pub fn layer_caps_with_node_local(
    dram_cache_per_node: u64,
    node_local_per_node: Option<u64>,
    procs_per_node: usize,
    bb_total: u64,
    total_procs: usize,
) -> Vec<(Tier, u64)> {
    assert!(procs_per_node > 0 && total_procs > 0);
    let mut caps = vec![(Tier::Dram, dram_cache_per_node / procs_per_node as u64)];
    if let Some(ssd) = node_local_per_node {
        caps.push((Tier::NodeLocal, ssd / procs_per_node as u64));
    }
    caps.push((Tier::SharedBurstBuffer, bb_total / total_procs as u64));
    caps.push((Tier::Pfs, u64::MAX));
    caps
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Fig. 2 geometry: node-local cap 2 units, BB cap 3 units, PFS ∞.
    /// We scale units to one 64-byte chunk each so chunk math stays exact.
    fn fig2_chain() -> ProcChain {
        ProcChain::new(
            vec![
                (Tier::NodeLocal, 2 * 64),
                (Tier::SharedBurstBuffer, 3 * 64),
                (Tier::Pfs, u64::MAX),
            ],
            64,
        )
        .unwrap()
    }

    #[test]
    fn fig2_spill_sequence() {
        // 8 segments (D1–D8 of process 1): 2 land on node-local, 3 on the
        // BB, 3 on the PFS — exactly Fig. 2.
        let mut chain = fig2_chain();
        let placements: Vec<PlacedSegment> = (0..8)
            .map(|i| chain.append(Payload::pattern(i, 64)).unwrap())
            .collect();
        let tiers: Vec<Tier> = placements.iter().map(|p| p.tier).collect();
        assert_eq!(
            tiers,
            vec![
                Tier::NodeLocal,
                Tier::NodeLocal,
                Tier::SharedBurstBuffer,
                Tier::SharedBurstBuffer,
                Tier::SharedBurstBuffer,
                Tier::Pfs,
                Tier::Pfs,
                Tier::Pfs,
            ]
        );
        // D4 (index 3) is the second segment of the BB log: VA = 2·64 + 64.
        assert_eq!(placements[3].va, VirtualAddr(3 * 64));
    }

    #[test]
    fn reads_find_data_across_layers() {
        let mut chain = fig2_chain();
        let mut placed = Vec::new();
        for i in 0..8u64 {
            placed.push((i, chain.append(Payload::pattern(i, 64)).unwrap()));
        }
        for (seed, p) in placed {
            let got = chain.read(p.va, 64).unwrap();
            assert!(
                got.content_eq(&Payload::pattern(seed, 64)),
                "segment {seed} on {} corrupted",
                p.tier
            );
        }
    }

    #[test]
    fn release_lets_fast_layer_recycle() {
        let mut chain = fig2_chain();
        let first = chain.append(Payload::pattern(1, 64)).unwrap();
        chain.append(Payload::pattern(2, 64)).unwrap();
        // Node-local full; release the first chunk, next append reuses it.
        chain.release(first.va, 64);
        let again = chain.append(Payload::pattern(3, 64)).unwrap();
        assert_eq!(again.tier, Tier::NodeLocal);
    }

    #[test]
    fn live_by_layer_tracks_distribution() {
        let mut chain = fig2_chain();
        for i in 0..6u64 {
            chain.append(Payload::pattern(i, 64)).unwrap();
        }
        let live = chain.live_by_layer();
        assert_eq!(live[0], (Tier::NodeLocal, 128));
        assert_eq!(live[1], (Tier::SharedBurstBuffer, 192));
        assert_eq!(live[2], (Tier::Pfs, 64));
        assert_eq!(chain.live_bytes(), 6 * 64);
    }

    #[test]
    fn segments_smaller_than_chunks_pack() {
        let mut chain =
            ProcChain::new(vec![(Tier::Dram, 256), (Tier::Pfs, u64::MAX)], 128).unwrap();
        // Four 50-byte segments: two per 128-byte chunk (with 28 wasted),
        // all on DRAM.
        for i in 0..4u64 {
            let p = chain.append(Payload::pattern(i, 50)).unwrap();
            assert_eq!(p.tier, Tier::Dram, "segment {i}");
        }
        // Chunk space exhausted (2×28 B tails unusable): spill.
        let p = chain.append(Payload::pattern(9, 50)).unwrap();
        assert_eq!(p.tier, Tier::Pfs);
    }

    #[test]
    fn paper_caps_follow_c_over_p() {
        let caps = paper_layer_caps(44 << 30, 32, 100 << 30, 8192);
        assert_eq!(caps[0].1, (44u64 << 30) / 32);
        assert_eq!(caps[1].1, (100u64 << 30) / 8192);
        assert_eq!(caps[2].1, u64::MAX);
    }

    #[test]
    fn read_at_many_matches_per_request_reads() {
        let chains: ChainSet = [(ClientId::new(0, 0), fig2_chain())].into_iter().collect();
        let client = ClientId::new(0, 0);
        let placed: Vec<PlacedSegment> = (0..8u64)
            .map(|i| chains.append(client, Payload::pattern(i, 64)).unwrap())
            .collect();
        // One grouped fetch over all segments, in a shuffled order.
        let requests: Vec<(VirtualAddr, u64)> = [3usize, 0, 7, 5, 1, 6, 2, 4]
            .iter()
            .map(|&i| (placed[i].va, 64))
            .collect();
        let batch = chains.read_at_many(client, &requests).unwrap();
        assert_eq!(batch.len(), requests.len());
        for (&(va, len), (payload, tier)) in requests.iter().zip(&batch) {
            let (single, single_tier) = chains.read_at(client, va, len).unwrap();
            assert!(payload.content_eq(&single));
            assert_eq!(*tier, single_tier);
        }
    }

    #[test]
    fn healthy_buddy_skips_failed_nodes() {
        let g = JobGeometry {
            nodes: 4,
            procs_per_node: 2,
            servers_per_node: 2,
        };
        let client = ClientId::new(0, 1); // node 0
        let none_failed = HashSet::new();
        // Healthy cluster: the classic one-node-stride buddy.
        assert_eq!(
            healthy_buddy(&g, &none_failed, client),
            Some(ClientId::new(0, 3))
        );
        // Buddy's node failed: walk one more stride.
        let failed: HashSet<usize> = [1].into_iter().collect();
        assert_eq!(
            healthy_buddy(&g, &failed, client),
            Some(ClientId::new(0, 5))
        );
        // Every other node failed: no buddy.
        let all: HashSet<usize> = [1, 2, 3].into_iter().collect();
        assert_eq!(healthy_buddy(&g, &all, client), None);
        // The client's own failed node never disqualifies *other* nodes.
        let own: HashSet<usize> = [0].into_iter().collect();
        assert_eq!(healthy_buddy(&g, &own, client), Some(ClientId::new(0, 3)));
    }

    #[test]
    fn healthy_buddy_single_node_has_none() {
        let g = JobGeometry {
            nodes: 1,
            procs_per_node: 4,
            servers_per_node: 2,
        };
        assert_eq!(
            healthy_buddy(&g, &HashSet::new(), ClientId::new(0, 2)),
            None
        );
    }

    #[test]
    fn injected_append_faults_roll_back_placement() {
        use crate::fault::{FaultConfig, FaultInjector};
        let mut chains: ChainSet = [(ClientId::new(0, 0), fig2_chain())].into_iter().collect();
        chains.set_injector(Arc::new(FaultInjector::new(FaultConfig {
            seed: 1,
            transient_prob: 1.0,
            ..FaultConfig::default()
        })));
        let client = ClientId::new(0, 0);
        assert!(chains.append(client, Payload::pattern(0, 64)).is_err());
        assert!(chains
            .append_many(
                client,
                vec![Payload::pattern(1, 64), Payload::pattern(2, 64)]
            )
            .is_err());
        // Every placement was rolled back: the chain holds no live bytes.
        assert_eq!(chains.live_bytes(), 0);
    }

    #[test]
    fn append_from_skips_layers_above_the_floor() {
        let mut chain = fig2_chain();
        // Node-local has room, but a floor of layer 1 forces the BB.
        let p = chain.append_from(1, Payload::pattern(0, 64)).unwrap();
        assert_eq!(p.tier, Tier::SharedBurstBuffer);
        // Floor past the last layer clamps to the PFS instead of panicking.
        let p = chain.append_from(99, Payload::pattern(1, 64)).unwrap();
        assert_eq!(p.tier, Tier::Pfs);
        // Floor 0 is plain append: node-local is still free and is used.
        let p = chain.append_from(0, Payload::pattern(2, 64)).unwrap();
        assert_eq!(p.tier, Tier::NodeLocal);
    }

    #[test]
    fn layer_usage_reports_live_and_capacity() {
        let mut chain = fig2_chain();
        for i in 0..3u64 {
            chain.append(Payload::pattern(i, 64)).unwrap();
        }
        let usage = chain.layer_usage();
        assert_eq!(chain.n_layers(), 3);
        assert_eq!(usage[0], (Tier::NodeLocal, 128, 128));
        assert_eq!(usage[1].0, Tier::SharedBurstBuffer);
        assert_eq!(usage[1].1, 64);
        assert_eq!(usage[1].2, 192);
        assert_eq!(usage[2].0, Tier::Pfs);
    }

    #[test]
    fn append_many_from_rolls_back_like_append_many() {
        use crate::fault::{FaultConfig, FaultInjector};
        let client = ClientId::new(0, 0);
        let chains: ChainSet = [(client, fig2_chain())].into_iter().collect();
        let placed = chains
            .append_many_from(
                client,
                1,
                vec![Payload::pattern(0, 64), Payload::pattern(1, 64)],
            )
            .unwrap();
        assert!(placed.iter().all(|p| p.tier == Tier::SharedBurstBuffer));
        // And under a certain transient fault, the batch rolls back whole.
        let mut faulty: ChainSet = [(client, fig2_chain())].into_iter().collect();
        faulty.set_injector(Arc::new(FaultInjector::new(FaultConfig {
            seed: 7,
            transient_prob: 1.0,
            ..FaultConfig::default()
        })));
        assert!(faulty
            .append_many_from(client, 1, vec![Payload::pattern(2, 64)])
            .is_err());
        assert_eq!(faulty.live_bytes(), 0);
    }

    #[test]
    fn vas_are_unique_within_a_chain() {
        let mut chain = fig2_chain();
        let mut seen = std::collections::HashSet::new();
        for i in 0..8u64 {
            let p = chain.append(Payload::pattern(i, 64)).unwrap();
            assert!(seen.insert(p.va), "duplicate VA {:?}", p.va);
        }
    }
}
