//! Virtual addressing across storage layers (§II-B2, Eq. 1).
//!
//! A segment written by a process lives in one of that process's per-layer
//! log files. Its **Virtual Address** is the prefix sum of the log
//! capacities of all lower layers plus its physical address within its own
//! layer's log:
//!
//! ```text
//! VA(layer i, addr A) = Σ_{k<i} C_k + A          (Eq. 1)
//! ```
//!
//! A VA therefore identifies *both* the layer and the physical location —
//! Fig. 2's example: with layer capacities (2, 3, …), segment D4 at
//! physical address 1 of its second-layer log has VA = 2 + 1 = 3.

use std::fmt;

/// A storage layer in the DHP chain, ordered fastest-first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Tier {
    /// Node-local DRAM (mmap'd shared memory managed by the servers).
    Dram,
    /// Node-local NVRAM/SSD.
    NodeLocal,
    /// Shared, network-attached burst buffer.
    SharedBurstBuffer,
    /// Disk-based parallel file system — the final destination layer.
    Pfs,
}

impl Tier {
    /// True when a log on this tier is visible only within its host node
    /// (the premise of the location-aware read service, §II-B4).
    pub fn node_local(self) -> bool {
        matches!(self, Tier::Dram | Tier::NodeLocal)
    }
}

impl fmt::Display for Tier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Tier::Dram => "DRAM",
            Tier::NodeLocal => "node-local",
            Tier::SharedBurstBuffer => "BB",
            Tier::Pfs => "PFS",
        };
        f.write_str(s)
    }
}

/// A virtual address within one process's cross-layer log chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VirtualAddr(pub u64);

/// The ordered per-process log capacities of each layer, with Eq. 1
/// encode/decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TierMap {
    /// (tier, per-process log capacity in bytes), fastest first. The final
    /// layer may be unbounded (`u64::MAX`), conventionally the PFS.
    layers: Vec<(Tier, u64)>,
    /// prefix[i] = Σ_{k<i} C_k.
    prefix: Vec<u64>,
}

impl TierMap {
    /// Build from ordered (tier, capacity) pairs. Capacities must be
    /// positive; only the last layer may be unbounded.
    pub fn new(layers: Vec<(Tier, u64)>) -> Self {
        assert!(!layers.is_empty(), "tier map needs at least one layer");
        let mut prefix = Vec::with_capacity(layers.len());
        let mut acc = 0u64;
        for (i, &(tier, cap)) in layers.iter().enumerate() {
            assert!(cap > 0, "layer {tier} has zero capacity");
            prefix.push(acc);
            if cap == u64::MAX {
                assert!(
                    i == layers.len() - 1,
                    "only the final layer may be unbounded"
                );
            } else {
                acc = acc
                    .checked_add(cap)
                    .expect("cumulative tier capacity overflows u64");
            }
        }
        TierMap { layers, prefix }
    }

    /// Number of layers.
    pub fn n_layers(&self) -> usize {
        self.layers.len()
    }

    /// Tier of layer `i`.
    pub fn tier(&self, layer: usize) -> Tier {
        self.layers[layer].0
    }

    /// Per-process log capacity of layer `i`.
    pub fn capacity(&self, layer: usize) -> u64 {
        self.layers[layer].1
    }

    /// Σ of capacities below `layer` (the Eq. 1 base).
    pub fn base(&self, layer: usize) -> u64 {
        self.prefix[layer]
    }

    /// Eq. 1: encode a (layer, physical address) pair.
    pub fn encode(&self, layer: usize, addr: u64) -> VirtualAddr {
        assert!(layer < self.layers.len(), "layer {layer} out of range");
        assert!(
            addr < self.layers[layer].1,
            "address {addr} exceeds layer {layer} capacity {}",
            self.layers[layer].1
        );
        VirtualAddr(self.prefix[layer] + addr)
    }

    /// Invert Eq. 1: the layer and physical address a VA points into.
    pub fn decode(&self, va: VirtualAddr) -> (usize, Tier, u64) {
        // prefix is sorted; find the last layer whose base ≤ va.
        let layer = match self.prefix.binary_search(&va.0) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        let addr = va.0 - self.prefix[layer];
        debug_assert!(addr < self.layers[layer].1, "VA beyond final capacity");
        (layer, self.layers[layer].0, addr)
    }

    /// The layer index of a tier, if present.
    pub fn layer_of(&self, tier: Tier) -> Option<usize> {
        self.layers.iter().position(|(t, _)| *t == tier)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig2_map() -> TierMap {
        // Fig. 2: node-local log capacity 2, shared BB capacity 3, PFS ∞.
        TierMap::new(vec![
            (Tier::NodeLocal, 2),
            (Tier::SharedBurstBuffer, 3),
            (Tier::Pfs, u64::MAX),
        ])
    }

    #[test]
    fn fig2_example_d4_has_va_3() {
        let m = fig2_map();
        // D4: physical address 1 in the layer-1 (BB) log.
        assert_eq!(m.encode(1, 1), VirtualAddr(3));
        // And back.
        assert_eq!(m.decode(VirtualAddr(3)), (1, Tier::SharedBurstBuffer, 1));
    }

    #[test]
    fn encode_decode_roundtrip_all_layers() {
        let m = fig2_map();
        for (layer, addr) in [(0, 0), (0, 1), (1, 0), (1, 2), (2, 0), (2, 1000)] {
            let va = m.encode(layer, addr);
            let (l, t, a) = m.decode(va);
            assert_eq!((l, a), (layer, addr));
            assert_eq!(t, m.tier(layer));
        }
    }

    #[test]
    fn va_identifies_layer_boundaries() {
        let m = fig2_map();
        assert_eq!(m.decode(VirtualAddr(0)).0, 0);
        assert_eq!(m.decode(VirtualAddr(1)).0, 0);
        assert_eq!(m.decode(VirtualAddr(2)).0, 1); // first BB byte
        assert_eq!(m.decode(VirtualAddr(4)).0, 1);
        assert_eq!(m.decode(VirtualAddr(5)).0, 2); // first PFS byte
    }

    #[test]
    fn same_va_different_processes_is_expected() {
        // §II-B3: D4 and D12, produced by different processes, both have
        // VA 3 — the VA alone is ambiguous, which is why metadata records
        // carry the source process.
        let m = fig2_map();
        let va_d4 = m.encode(1, 1);
        let va_d12 = m.encode(1, 1);
        assert_eq!(va_d4, va_d12);
    }

    #[test]
    fn base_is_prefix_sum() {
        let m = fig2_map();
        assert_eq!(m.base(0), 0);
        assert_eq!(m.base(1), 2);
        assert_eq!(m.base(2), 5);
    }

    #[test]
    fn layer_of_tier() {
        let m = fig2_map();
        assert_eq!(m.layer_of(Tier::SharedBurstBuffer), Some(1));
        assert_eq!(m.layer_of(Tier::Dram), None);
    }

    #[test]
    #[should_panic(expected = "exceeds layer")]
    fn encode_beyond_capacity_panics() {
        fig2_map().encode(0, 2);
    }

    #[test]
    #[should_panic(expected = "unbounded")]
    fn unbounded_middle_layer_rejected() {
        TierMap::new(vec![(Tier::Dram, u64::MAX), (Tier::Pfs, u64::MAX)]);
    }
}
