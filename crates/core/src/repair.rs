//! Online repair: re-replicate segments degraded by node loss.
//!
//! When a node's volatile storage is lost ([`fail_node`]), every segment
//! whose primary span lived there is served from its buddy replica — the
//! job runs *degraded*: one more failure loses data. This module restores
//! full redundancy while the job keeps running, the robustness counterpart
//! of the paper's replication "future work": scan the metadata index for
//! records referencing a failed node, re-read each surviving copy, place a
//! fresh copy on a healthy buddy chain, and swap the index entry with the
//! same compare-and-swap discipline the promotion path uses — a record
//! overwritten mid-repair is left alone and the fresh copy is rolled back.
//!
//! Lock order matches the data path: at most one chain lock at a time
//! (source read, then copy append, then dead-span release), KV shard locks
//! strictly between chain acquisitions, never nested inside one.
//!
//! [`fail_node`]: crate::server::UniviStorJob::fail_node

use crate::config::JobGeometry;
use crate::fault::{with_retries, RetryPolicy};
use crate::metadata::{ClientId, MetadataService, SegmentRecord};
use crate::metrics::JobMetrics;
use crate::placement::{healthy_buddy, ChainSet};
use crate::va::VirtualAddr;
use std::collections::HashSet;
use univistor_sim::{Payload, SimResult};

/// Outcome of one repair pass ([`rebuild_degraded`]).
///
/// [`rebuild_degraded`]: crate::server::UniviStorJob::rebuild_degraded
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RepairReport {
    /// Index records examined.
    pub scanned_records: u64,
    /// Records whose primary was lost and rebuilt from the replica.
    pub repaired_primary: u64,
    /// Records whose replica was lost and re-mirrored from the primary.
    pub repaired_replica: u64,
    /// Bytes copied onto healthy chains by this pass.
    pub repaired_bytes: u64,
    /// Records with both copies on failed nodes — unrecoverable.
    pub lost_records: u64,
    /// Bytes in unrecoverable records.
    pub lost_bytes: u64,
    /// Records left without full redundancy after the pass: unrecoverable
    /// records, survivors the pass could not read, and repairs that found
    /// no healthy buddy with room for a mirror.
    pub remaining_degraded: u64,
}

impl RepairReport {
    /// Fold another file's pass into this one.
    pub fn absorb(&mut self, other: RepairReport) {
        self.scanned_records += other.scanned_records;
        self.repaired_primary += other.repaired_primary;
        self.repaired_replica += other.repaired_replica;
        self.repaired_bytes += other.repaired_bytes;
        self.lost_records += other.lost_records;
        self.lost_bytes += other.lost_bytes;
        self.remaining_degraded += other.remaining_degraded;
    }
}

/// Copy `payload` onto `target`'s chain as ONE contiguous same-layer span
/// (chunk-split sub-appends, like the promotion path), returning its VA.
/// A fragmented or cross-layer copy is rolled back and reported as `None`
/// — the record must stay describable by a single `(client, va)` pair.
/// Shared with the scrubber's corrupt-copy repair.
pub(crate) fn place_copy(
    chains: &ChainSet,
    target: ClientId,
    payload: &Payload,
    len: u64,
    chunk: u64,
    retry: &RetryPolicy,
    metrics: Option<&JobMetrics>,
) -> SimResult<Option<VirtualAddr>> {
    let mut sub = Vec::with_capacity((len / chunk) as usize + 1);
    let mut pos = 0u64;
    while pos < len {
        let n = chunk.min(len - pos);
        sub.push(payload.slice(pos, n));
        pos += n;
    }
    let placements = match with_retries(retry, metrics, || chains.append_many(target, sub.clone()))
    {
        Ok(p) => p,
        // No space on the buddy (or the fault budget ran out): degrade
        // gracefully rather than failing the whole pass.
        Err(_) => return Ok(None),
    };
    let layer = placements.first().map(|p| p.layer);
    let one_span = placements.iter().all(|p| Some(p.layer) == layer)
        && placements
            .windows(2)
            .all(|w| w[0].va.0 + w[0].len == w[1].va.0);
    if !one_span {
        for p in &placements {
            chains.release(target, p.va, p.len);
        }
        return Ok(None);
    }
    Ok(placements.first().map(|p| p.va))
}

/// Repair every degraded record of one file. See the module docs for the
/// per-record cases; `ensure_chain` lets the pass materialize a buddy
/// chain for a client that never wrote.
#[allow(clippy::too_many_arguments)]
pub fn repair_file(
    metadata: &MetadataService,
    chains: &ChainSet,
    geometry: &JobGeometry,
    chunk_size: u64,
    failed: &HashSet<usize>,
    retry: &RetryPolicy,
    metrics: Option<&JobMetrics>,
    ensure_chain: &dyn Fn(ClientId) -> SimResult<()>,
    fid: u64,
    file_size: u64,
) -> SimResult<RepairReport> {
    let mut report = RepairReport::default();
    let node_failed = |c: ClientId| failed.contains(&geometry.node_of_rank(c.rank as usize));
    let (_, records) = metadata.lookup_range(fid, 0, file_size);
    for (key, rec) in records {
        report.scanned_records += 1;
        let primary_lost = node_failed(rec.client);
        let replica_lost = rec.replica.is_some_and(|(rc, _)| node_failed(rc));
        if !primary_lost && !replica_lost {
            continue;
        }

        // Both copies gone (or the primary gone with no replica): the
        // bytes are unrecoverable. Leave the record so reads fail loudly
        // with full context instead of returning holes.
        let source = if primary_lost {
            rec.replica.filter(|&(rc, _)| !node_failed(rc))
        } else {
            Some((rec.client, rec.va))
        };
        let Some((src_client, src_va)) = source else {
            report.lost_records += 1;
            report.lost_bytes += rec.len;
            report.remaining_degraded += 1;
            continue;
        };

        // Read the surviving copy (shared chain lock, released before any
        // other lock is taken).
        let Ok((payload, _)) = with_retries(retry, metrics, || {
            chains.read_at(src_client, src_va, rec.len)
        }) else {
            report.remaining_degraded += 1;
            continue;
        };

        // Verify the surviving copy before replicating it: propagating a
        // silently corrupted source would mint two bad copies with a valid
        // looking record. The other copy lives on the failed node, so a
        // corrupt survivor has no fallback — leave the record degraded for
        // the scrubber/read path to report instead of spreading rot.
        if let Some(sum) = rec.checksum {
            if payload.content_checksum() != sum {
                if let Some(m) = metrics {
                    m.record_verify_failure("repair");
                }
                report.remaining_degraded += 1;
                continue;
            }
        }

        // Place a fresh copy on a healthy buddy of the surviving owner.
        // No healthy buddy (single node, or everything else failed) means
        // the record stays un-mirrored but readable.
        let fresh = match healthy_buddy(geometry, failed, src_client) {
            Some(buddy) => {
                ensure_chain(buddy)?;
                place_copy(chains, buddy, &payload, rec.len, chunk_size, retry, metrics)?
                    .map(|va| (buddy, va))
            }
            None => None,
        };

        let new_record = if primary_lost {
            // The surviving replica is promoted to primary; the fresh copy
            // (if any) becomes the new replica.
            SegmentRecord {
                client: src_client,
                va: src_va,
                len: rec.len,
                replica: fresh,
                // The verified survivor carries the same bytes, so the
                // write-commit stamp stays valid across the promotion.
                checksum: rec.checksum,
            }
        } else {
            // Primary healthy, replica lost: keep the primary span, point
            // the record at the fresh mirror (or drop the dead reference).
            SegmentRecord {
                replica: fresh,
                ..rec
            }
        };
        if new_record == rec {
            // Nothing changed (no buddy found for a lost replica): the
            // record still references the failed node.
            report.remaining_degraded += 1;
            continue;
        }

        // Swap the index entry only if nobody overwrote it meanwhile.
        let producer_node = geometry.node_of_rank(new_record.client.rank as usize);
        if metadata
            .replace_if_current(key, &rec, new_record, producer_node)
            .1
        {
            // The dead span on the failed node is no longer referenced;
            // release it so live-byte accounting drops the lost bytes.
            if primary_lost {
                chains.release(rec.client, rec.va, rec.len);
                report.repaired_primary += 1;
            } else if let Some((rc, rva)) = rec.replica {
                chains.release(rc, rva, rec.len);
            }
            if fresh.is_some() {
                if !primary_lost {
                    report.repaired_replica += 1;
                }
                report.repaired_bytes += rec.len;
            } else {
                // The surviving copy is readable, but no healthy buddy
                // had room for a mirror: still a single copy.
                report.remaining_degraded += 1;
            }
        } else {
            // Lost the race to an overwrite: the new data already has a
            // fresh record; drop our copy.
            if let Some((fc, fva)) = fresh {
                chains.release(fc, fva, rec.len);
            }
        }
    }
    if let Some(m) = metrics {
        m.record_repair(
            report.repaired_primary,
            report.repaired_replica,
            report.repaired_bytes,
        );
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::UniviStorConfig;
    use crate::metadata::SegKey;
    use crate::placement::ProcChain;
    use crate::va::Tier;

    /// Chunk size shared by the harness chains and the repair calls.
    const CHUNK: u64 = 128;

    fn harness() -> (MetadataService, ChainSet, UniviStorConfig) {
        let cfg = UniviStorConfig::test_small(4, 2);
        let metadata = MetadataService::new(256, 4, 4);
        let chains = ChainSet::new();
        for rank in 0..8u32 {
            chains
                .ensure(ClientId::new(0, rank), || {
                    ProcChain::new(vec![(Tier::Dram, 4096), (Tier::Pfs, u64::MAX)], CHUNK)
                })
                .unwrap();
        }
        (metadata, chains, cfg)
    }

    fn ensure_noop(_: ClientId) -> SimResult<()> {
        Ok(())
    }

    /// Write one 128 B replicated segment from rank 0 (node 0) with its
    /// replica on rank 2 (node 1), record it, and return the key.
    fn seed_segment(metadata: &MetadataService, chains: &ChainSet) -> (SegKey, SegmentRecord) {
        let primary = ClientId::new(0, 0);
        let buddy = ClientId::new(0, 2);
        let payload = Payload::pattern(7, 128);
        let p = chains.append(primary, payload.clone()).unwrap();
        let r = chains.append(buddy, payload).unwrap();
        let key = SegKey { fid: 1, offset: 0 };
        let rec = SegmentRecord {
            client: primary,
            va: p.va,
            len: 128,
            replica: Some((buddy, r.va)),
            checksum: None,
        };
        metadata.insert(key, rec, 0);
        (key, rec)
    }

    #[test]
    fn lost_primary_promotes_replica_and_remirrors() {
        let (md, chains, cfg) = harness();
        let (key, rec) = seed_segment(&md, &chains);
        let failed: HashSet<usize> = [0].into_iter().collect();
        let report = repair_file(
            &md,
            &chains,
            &cfg.geometry,
            CHUNK,
            &failed,
            &cfg.retry,
            None,
            &ensure_noop,
            1,
            128,
        )
        .unwrap();
        assert_eq!(report.repaired_primary, 1);
        assert_eq!(report.repaired_bytes, 128);
        assert_eq!(report.remaining_degraded, 0);
        let (_, new_rec) = md.get(&key);
        let new_rec = new_rec.unwrap();
        // The old replica owner (rank 2, node 1) is the new primary.
        assert_eq!(new_rec.client, rec.replica.unwrap().0);
        let (rc, rva) = new_rec.replica.expect("re-mirrored");
        assert_ne!(
            cfg.geometry.node_of_rank(rc.rank as usize),
            cfg.geometry.node_of_rank(new_rec.client.rank as usize),
            "fresh replica must live on a different node"
        );
        // Both spans read back the original bytes.
        let (p, _) = chains.read_at(new_rec.client, new_rec.va, 128).unwrap();
        let (q, _) = chains.read_at(rc, rva, 128).unwrap();
        assert!(p.content_eq(&Payload::pattern(7, 128)));
        assert!(q.content_eq(&Payload::pattern(7, 128)));
        // The dead primary span was released.
        assert_eq!(
            chains.with(rec.client, |c| c.live_bytes()).unwrap(),
            0,
            "dead primary span must be freed"
        );
    }

    #[test]
    fn lost_replica_is_remirrored_from_primary() {
        let (md, chains, cfg) = harness();
        let (key, rec) = seed_segment(&md, &chains);
        // Node 1 hosts the replica (rank 2).
        let failed: HashSet<usize> = [1].into_iter().collect();
        let report = repair_file(
            &md,
            &chains,
            &cfg.geometry,
            CHUNK,
            &failed,
            &cfg.retry,
            None,
            &ensure_noop,
            1,
            128,
        )
        .unwrap();
        assert_eq!(report.repaired_replica, 1);
        let (_, new_rec) = md.get(&key);
        let new_rec = new_rec.unwrap();
        assert_eq!(new_rec.client, rec.client, "primary untouched");
        let (rc, _) = new_rec.replica.expect("re-mirrored");
        assert!(!failed.contains(&cfg.geometry.node_of_rank(rc.rank as usize)));
    }

    #[test]
    fn both_copies_lost_is_reported_not_hidden() {
        let (md, chains, cfg) = harness();
        let (key, rec) = seed_segment(&md, &chains);
        let failed: HashSet<usize> = [0, 1].into_iter().collect();
        let report = repair_file(
            &md,
            &chains,
            &cfg.geometry,
            CHUNK,
            &failed,
            &cfg.retry,
            None,
            &ensure_noop,
            1,
            128,
        )
        .unwrap();
        assert_eq!(report.lost_records, 1);
        assert_eq!(report.lost_bytes, 128);
        assert_eq!(report.remaining_degraded, 1);
        // The record is left in place so reads fail with context.
        assert_eq!(md.get(&key).1, Some(rec));
    }

    #[test]
    fn healthy_records_are_untouched() {
        let (md, chains, cfg) = harness();
        let (key, rec) = seed_segment(&md, &chains);
        // Node 3 hosts neither copy.
        let failed: HashSet<usize> = [3].into_iter().collect();
        let report = repair_file(
            &md,
            &chains,
            &cfg.geometry,
            CHUNK,
            &failed,
            &cfg.retry,
            None,
            &ensure_noop,
            1,
            128,
        )
        .unwrap();
        assert_eq!(report.scanned_records, 1);
        assert_eq!(report.repaired_primary + report.repaired_replica, 0);
        assert_eq!(md.get(&key).1, Some(rec));
    }
}
