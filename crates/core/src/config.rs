//! Configuration: job geometry and the feature toggles the evaluation
//! ablates (IA, COC, ADPT, workflow management, flush).

use crate::fault::{FaultConfig, RetryPolicy};
use univistor_sim::calibration::Calibration;

/// Which optimizations are enabled. Every evaluation figure toggles some
/// subset of these; defaults are "everything on" (the shipping system).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Features {
    /// Interference-aware resource scheduling (§II-C).
    pub interference_aware: bool,
    /// Collective open/close: root-only metadata ops + broadcast (§II-F).
    pub collective_open_close: bool,
    /// Adaptive data striping for flush (§II-D).
    pub adaptive_striping: bool,
    /// Lightweight workflow management (§II-E), off by default like the
    /// `ENABLE_WORKFLOW` environment variable.
    pub workflow: bool,
    /// Location-aware read service (§II-B4).
    pub location_aware_reads: bool,
    /// Server-side flush at close time (§II-A); applications without
    /// persistence requirements can disable it.
    pub flush_on_close: bool,
}

impl Default for Features {
    fn default() -> Self {
        Features {
            interference_aware: true,
            collective_open_close: true,
            adaptive_striping: true,
            workflow: false,
            location_aware_reads: true,
            flush_on_close: true,
        }
    }
}

impl Features {
    /// Everything on (including workflow management).
    pub fn all() -> Self {
        Features {
            workflow: true,
            ..Features::default()
        }
    }

    /// Every optimization off — the unoptimized baseline in Fig. 5.
    pub fn none() -> Self {
        Features {
            interference_aware: false,
            collective_open_close: false,
            adaptive_striping: false,
            workflow: false,
            location_aware_reads: false,
            flush_on_close: true,
        }
    }
}

/// Which write-path implementation [`write`](crate::server::UniviStorJob::write)
/// uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WritePipeline {
    /// Batched pipeline: plan all grid-aligned pieces up front, place the
    /// run under one chain-lock acquisition, commit metadata with a single
    /// punch and partition-grouped puts, coalesce VA-contiguous same-layer
    /// pieces into one record (capped at `metadata_range_size`), and touch
    /// the node buffer and accounting mutex once per write call.
    #[default]
    Batched,
    /// Reference implementation: one chain-lock / punch / KV put /
    /// node-buffer and accounting acquisition per segment piece. Kept for
    /// differential tests and as the `write_batch` bench baseline.
    PerPiece,
}

/// Which read-path implementation [`read`](crate::server::UniviStorJob::read)
/// uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReadPipeline {
    /// Batched pipeline: plan every clipped fragment up front (replica
    /// rerouting resolved in the plan), group fragments by producer chain,
    /// and fetch each group under one shared chain-lock acquisition
    /// ([`ChainSet::read_at_many`](crate::placement::ChainSet::read_at_many)).
    #[default]
    Batched,
    /// Reference implementation: one chain-lock acquisition per overlapping
    /// fragment, fetched while walking the record list. Kept for
    /// differential tests and as the `read_batch` bench baseline.
    PerRecord,
}

/// Shape of the job UniviStor serves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobGeometry {
    /// Compute nodes allocated.
    pub nodes: usize,
    /// Client processes per node (per application).
    pub procs_per_node: usize,
    /// UniviStor server processes per node (paper default 1; the
    /// evaluation uses 2 to exploit both NUMA sockets).
    pub servers_per_node: usize,
}

impl JobGeometry {
    /// Total client processes of one application.
    pub fn total_procs(&self) -> usize {
        self.nodes * self.procs_per_node
    }

    /// Total UniviStor servers.
    pub fn total_servers(&self) -> usize {
        self.nodes * self.servers_per_node
    }

    /// Node hosting global client rank `rank` (block distribution, as
    /// launched by the scheduler).
    pub fn node_of_rank(&self, rank: usize) -> usize {
        rank / self.procs_per_node
    }

    /// The evaluation's geometry for a given total process count:
    /// 32 procs/node, 2 servers/node (§III-A).
    pub fn paper(total_procs: usize) -> Self {
        let procs_per_node = 32.min(total_procs.max(1));
        let nodes = total_procs.div_ceil(procs_per_node).max(1);
        JobGeometry {
            nodes,
            procs_per_node,
            servers_per_node: 2,
        }
    }
}

/// Full UniviStor configuration.
#[derive(Debug, Clone)]
pub struct UniviStorConfig {
    /// Job geometry.
    pub geometry: JobGeometry,
    /// Feature toggles.
    pub features: Features,
    /// Platform constants (tier bandwidths/capacities, latencies).
    pub cal: Calibration,
    /// Log chunk size in bytes (§II-B1: log space is formatted as chunks).
    pub chunk_size: u64,
    /// Metadata range width for the distributed KV (bytes of logical
    /// offset per range).
    pub metadata_range_size: u64,
    /// α of Eq. 2 — OSTs that saturate one flushing server.
    pub alpha: usize,
    /// Segment size client writes are split into before placement.
    pub segment_size: u64,
    /// Cache on the distributed DRAM layer (off = the paper's
    /// "UniviStor/BB" and "UniviStor/(BB+Disk)" configurations).
    pub enable_dram: bool,
    /// Cache on the shared burst buffer (off together with `enable_dram`
    /// = the paper's "UniviStor/(Disk)" configuration).
    pub enable_bb: bool,
    /// Mirror volatile-layer segments to a buddy process on another node
    /// (the paper's future work: resilience for data in volatile layers).
    pub replicate_volatile: bool,
    /// Which write-path implementation to use (batched by default).
    pub write_pipeline: WritePipeline,
    /// Which read-path implementation to use (batched by default).
    pub read_pipeline: ReadPipeline,
    /// Forward reads by one `(client, fid)` pair whose start matches the
    /// previous read's end before readahead kicks in. Streak detection is
    /// per client+file, so interleaved streams don't defeat it.
    pub readahead_min_streak: u32,
    /// Bytes of extra metadata lookup issued past a sequential read's end;
    /// the widened window lands in the node's read record cache, so the
    /// following reads of the scan are served without metadata RPCs.
    /// `0` disables readahead (the default for the figure configurations,
    /// whose timing plane charges per metadata RPC).
    pub readahead_window: u64,
    /// Retry budget for transient I/O faults (injected or environmental).
    /// Only consulted when an operation actually fails transiently, so
    /// the default policy costs nothing on healthy runs.
    pub retry: RetryPolicy,
    /// Deterministic fault-injection schedule. `None` (the default)
    /// constructs no injector at all: the hot paths pay only an
    /// `Option` check.
    pub fault: Option<FaultConfig>,
}

impl UniviStorConfig {
    /// The paper's configuration for a given total client count.
    pub fn paper(total_procs: usize) -> Self {
        UniviStorConfig {
            geometry: JobGeometry::paper(total_procs),
            features: Features::default(),
            cal: Calibration::default(),
            chunk_size: 8 << 20,
            metadata_range_size: 64 << 20,
            alpha: 8,
            segment_size: 8 << 20,
            enable_dram: true,
            enable_bb: true,
            replicate_volatile: false,
            write_pipeline: WritePipeline::default(),
            read_pipeline: ReadPipeline::default(),
            readahead_min_streak: 2,
            readahead_window: 0,
            retry: RetryPolicy::default(),
            fault: None,
        }
    }

    /// Small geometry for unit tests: `nodes` × `procs_per_node`, tiny
    /// chunks/segments so spill paths trigger with kilobytes.
    pub fn test_small(nodes: usize, procs_per_node: usize) -> Self {
        let mut cfg = UniviStorConfig {
            geometry: JobGeometry {
                nodes,
                procs_per_node,
                servers_per_node: 2,
            },
            features: Features::default(),
            cal: Calibration::default(),
            chunk_size: 256,
            metadata_range_size: 1024,
            alpha: 8,
            segment_size: 128,
            enable_dram: true,
            enable_bb: true,
            replicate_volatile: false,
            write_pipeline: WritePipeline::default(),
            read_pipeline: ReadPipeline::default(),
            readahead_min_streak: 2,
            readahead_window: 0,
            retry: RetryPolicy::default(),
            fault: None,
        };
        // Tiny tiers so tests exercise spilling: 1 KiB DRAM per node,
        // 4 KiB per BB node.
        cfg.cal.dram_cache_capacity_per_node = 1024;
        cfg.cal.bb_capacity_per_node = 4096;
        cfg.cal.bb_nodes_min = 1;
        cfg.cal.bb_nodes_per_compute_node = 0.5;
        cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_geometry_matches_evaluation_setup() {
        let g = JobGeometry::paper(8192);
        assert_eq!(g.nodes, 256);
        assert_eq!(g.procs_per_node, 32);
        assert_eq!(g.total_servers(), 512);
        let g = JobGeometry::paper(64);
        assert_eq!(g.nodes, 2);
        assert_eq!(g.total_procs(), 64);
    }

    #[test]
    fn small_proc_counts_fit_one_node() {
        let g = JobGeometry::paper(8);
        assert_eq!(g.nodes, 1);
        assert_eq!(g.procs_per_node, 8);
    }

    #[test]
    fn node_of_rank_blocks() {
        let g = JobGeometry::paper(64);
        assert_eq!(g.node_of_rank(0), 0);
        assert_eq!(g.node_of_rank(31), 0);
        assert_eq!(g.node_of_rank(32), 1);
    }

    #[test]
    fn feature_presets() {
        assert!(Features::default().adaptive_striping);
        assert!(!Features::default().workflow);
        assert!(Features::all().workflow);
        let none = Features::none();
        assert!(!none.interference_aware && !none.collective_open_close);
    }
}
