//! Configuration: job geometry and the feature toggles the evaluation
//! ablates (IA, COC, ADPT, workflow management, flush).

use crate::fault::{FaultConfig, RetryPolicy};
use crate::va::Tier;
use univistor_sim::calibration::Calibration;
use univistor_sim::{SimError, SimResult};

/// Which optimizations are enabled. Every evaluation figure toggles some
/// subset of these; defaults are "everything on" (the shipping system).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Features {
    /// Interference-aware resource scheduling (§II-C).
    pub interference_aware: bool,
    /// Collective open/close: root-only metadata ops + broadcast (§II-F).
    pub collective_open_close: bool,
    /// Adaptive data striping for flush (§II-D).
    pub adaptive_striping: bool,
    /// Lightweight workflow management (§II-E), off by default like the
    /// `ENABLE_WORKFLOW` environment variable.
    pub workflow: bool,
    /// Location-aware read service (§II-B4).
    pub location_aware_reads: bool,
    /// Server-side flush at close time (§II-A); applications without
    /// persistence requirements can disable it.
    pub flush_on_close: bool,
}

impl Default for Features {
    fn default() -> Self {
        Features {
            interference_aware: true,
            collective_open_close: true,
            adaptive_striping: true,
            workflow: false,
            location_aware_reads: true,
            flush_on_close: true,
        }
    }
}

impl Features {
    /// Everything on (including workflow management).
    pub fn all() -> Self {
        Features {
            workflow: true,
            ..Features::default()
        }
    }

    /// Every optimization off — the unoptimized baseline in Fig. 5.
    pub fn none() -> Self {
        Features {
            interference_aware: false,
            collective_open_close: false,
            adaptive_striping: false,
            workflow: false,
            location_aware_reads: false,
            flush_on_close: true,
        }
    }
}

/// Which write-path implementation [`write`](crate::server::UniviStorJob::write)
/// uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WritePipeline {
    /// Batched pipeline: plan all grid-aligned pieces up front, place the
    /// run under one chain-lock acquisition, commit metadata with a single
    /// punch and partition-grouped puts, coalesce VA-contiguous same-layer
    /// pieces into one record (capped at `metadata_range_size`), and touch
    /// the node buffer and accounting mutex once per write call.
    #[default]
    Batched,
    /// Reference implementation: one chain-lock / punch / KV put /
    /// node-buffer and accounting acquisition per segment piece. Kept for
    /// differential tests and as the `write_batch` bench baseline.
    PerPiece,
}

/// Which read-path implementation [`read`](crate::server::UniviStorJob::read)
/// uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReadPipeline {
    /// Batched pipeline: plan every clipped fragment up front (replica
    /// rerouting resolved in the plan), group fragments by producer chain,
    /// and fetch each group under one shared chain-lock acquisition
    /// ([`ChainSet::read_at_many`](crate::placement::ChainSet::read_at_many)).
    #[default]
    Batched,
    /// Reference implementation: one chain-lock acquisition per overlapping
    /// fragment, fetched while walking the record list. Kept for
    /// differential tests and as the `read_batch` bench baseline.
    PerRecord,
}

/// Which flush-plane implementation the close-time flush (and the
/// tiering daemon's catch-up) uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FlushPipeline {
    /// Parallel pipelined engine: per-server gather workers overlap the
    /// metadata lookup and tier gather of range N+1 with the stripe
    /// write of range N through a bounded queue; adjacent spans bound
    /// for the same server range coalesce into single Lustre writes;
    /// and instead of holding the core for the whole flush, the record
    /// set is snapshotted and drained live, with a generation-validated
    /// catch-up pass re-draining anything mutated mid-flight.
    #[default]
    Parallel,
    /// Reference implementation: one sequential loop over the server
    /// ranges, one chain read and one Lustre write per clipped span.
    /// Under [`Runtime::Partitioned`] the core is checked out (workers
    /// parked) for the whole flush. Kept for differential tests and as
    /// the `flush` bench baseline.
    Sequential,
}

/// Which server-core runtime [`UniviStorJob`](crate::server::UniviStorJob)
/// executes its data plane on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Runtime {
    /// Shared-state implementation: one set of library structures
    /// (`ChainSet`, `MetadataService`, heat shards) guarded by sharded
    /// `RwLock`s, mutated in place by the calling thread.
    #[default]
    Locked,
    /// Shared-nothing implementation: a fixed set of partition workers,
    /// each exclusively owning its slice of chains, KV partitions, node
    /// buffers, and heat shards. Calls become routing layers that send
    /// typed request messages over bounded mailboxes and await batched
    /// replies; the steady-state data path takes zero counted locks.
    Partitioned,
}

/// Occupancy fractions steering the background spill of one tier
/// (hysteresis pair: spill starts strictly above `high`, stops at or
/// below `low`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TierWatermarks {
    /// Spill engages when `live / capacity` exceeds this fraction.
    pub high: f64,
    /// Spill keeps moving cold segments down until `live / capacity`
    /// is at or below this fraction.
    pub low: f64,
}

impl Default for TierWatermarks {
    fn default() -> Self {
        TierWatermarks {
            high: 0.85,
            low: 0.60,
        }
    }
}

/// Unimem-style promotion policy: a segment moves up only when the
/// expected read savings justify the migration traffic.
///
/// With per-byte access costs `c_src`/`c_dst` (relative units, DRAM = 1),
/// a segment of heat `h` scores `h · (c_src − c_dst) / (c_src + c_dst)`
/// — expected future read-byte savings over migration bytes (one read of
/// the source plus one write of the destination). It is promoted when
/// `h ≥ min_reads` **and** the score is at least `min_benefit`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PromotionPolicy {
    /// Reads a segment must have absorbed before it is even considered.
    pub min_reads: u32,
    /// Minimum benefit/cost ratio (see the struct docs). `0.0` reduces
    /// the policy to the legacy read-count threshold.
    pub min_benefit: f64,
}

impl Default for PromotionPolicy {
    fn default() -> Self {
        PromotionPolicy {
            min_reads: 3,
            min_benefit: 1.0,
        }
    }
}

/// The background tiering controller's knobs, grouped into one typed
/// sub-struct instead of more loose fields on [`UniviStorConfig`].
///
/// Disabled by default: with `enabled == false` the data path pays only a
/// boolean check and behaves exactly as before this subsystem existed
/// (figure results stay byte-identical). Enable via
/// `UniviStorConfig::builder().tiering(TieringConfig::on()).build()` or by
/// setting the field directly.
#[derive(Debug, Clone, PartialEq)]
pub struct TieringConfig {
    /// Master switch for the *automatic* triggers (write-path cadence and
    /// the spawned daemon). Explicit `TieringHandle::drain_now()` calls
    /// run regardless, so operators can tier manually on a disabled job.
    pub enabled: bool,
    /// Spill watermarks for the DRAM layer.
    pub dram: TierWatermarks,
    /// Spill watermarks for the node-local layer (when configured).
    pub node_local: TierWatermarks,
    /// Spill watermarks for the shared burst buffer.
    pub burst_buffer: TierWatermarks,
    /// Run one tiering pass on the writing client's node every this many
    /// write calls (`0` = never from the data path; only the daemon clock
    /// or explicit `drain_now()` calls advance the controller).
    pub drain_cadence_ops: u64,
    /// Wall-clock pause between a daemon actor's passes, in milliseconds.
    pub daemon_interval_ms: u64,
    /// Most segments one spill pass migrates per chain (bounds the work
    /// an inline cadence pass can steal from a writer).
    pub spill_batch: usize,
    /// Most cold spans one pass drains to the PFS per node.
    pub drain_batch: usize,
    /// Upward-migration policy.
    pub promotion: PromotionPolicy,
    /// Halve every heat counter after this many passes (`0` disables
    /// decay — the legacy behavior, where a once-hot segment pins the
    /// fast tier forever).
    pub heat_decay_passes: u64,
    /// A span with at most this many recorded reads counts as cold for
    /// the continuous PFS drain.
    pub cold_max_reads: u32,
}

impl Default for TieringConfig {
    fn default() -> Self {
        TieringConfig {
            enabled: false,
            dram: TierWatermarks::default(),
            node_local: TierWatermarks::default(),
            burst_buffer: TierWatermarks::default(),
            drain_cadence_ops: 64,
            daemon_interval_ms: 5,
            spill_batch: 32,
            drain_batch: 64,
            promotion: PromotionPolicy::default(),
            heat_decay_passes: 16,
            cold_max_reads: 0,
        }
    }
}

impl TieringConfig {
    /// The default policy with the daemon switched on.
    pub fn on() -> Self {
        TieringConfig {
            enabled: true,
            ..TieringConfig::default()
        }
    }

    /// The watermark pair governing `tier`, or `None` for the PFS (the
    /// unbounded terminal layer never spills).
    pub fn watermarks(&self, tier: Tier) -> Option<TierWatermarks> {
        match tier {
            Tier::Dram => Some(self.dram),
            Tier::NodeLocal => Some(self.node_local),
            Tier::SharedBurstBuffer => Some(self.burst_buffer),
            Tier::Pfs => None,
        }
    }
}

/// Background checksum-scrubber daemon knobs. Modeled on
/// [`TieringConfig`]: disabled by default, so jobs that never opt in pay
/// nothing and produce byte-identical figure results. Enable via
/// `UniviStorConfig::builder().integrity(IntegrityConfig { scrub: ScrubConfig::on(), ..Default::default() })`
/// or by setting the fields directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScrubConfig {
    /// Spawn one scrubber actor per node at job construction. Explicit
    /// `ScrubHandle::scrub_now()` calls run regardless, so operators can
    /// scrub manually on a disabled job.
    pub enabled: bool,
    /// Wall-clock pause between a scrubber actor's passes, in
    /// milliseconds.
    pub interval_ms: u64,
    /// Most segment records one pass verifies per node (rate limit, so
    /// the scrubber steals bounded work from the data plane).
    pub max_segments_per_pass: usize,
}

impl Default for ScrubConfig {
    fn default() -> Self {
        ScrubConfig {
            enabled: false,
            interval_ms: 5,
            max_segments_per_pass: 256,
        }
    }
}

impl ScrubConfig {
    /// The default policy with the daemon switched on.
    pub fn on() -> Self {
        ScrubConfig {
            enabled: true,
            ..ScrubConfig::default()
        }
    }
}

/// The end-to-end data-integrity plane: write-commit checksums plus the
/// background scrubber.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IntegrityConfig {
    /// Stamp every committed [`SegmentRecord`](crate::metadata::SegmentRecord)
    /// with a content checksum and verify it at every point data
    /// is fetched (read, flush gather, tiering copy, repair source). On
    /// by default: verification reroutes to a healthy replica instead of
    /// surfacing wrong bytes, and figure results stay byte-identical
    /// because checksums never change *which* bytes are returned.
    pub checksums: bool,
    /// Background scrubber daemon (off by default).
    pub scrub: ScrubConfig,
}

impl Default for IntegrityConfig {
    fn default() -> Self {
        IntegrityConfig {
            checksums: true,
            scrub: ScrubConfig::default(),
        }
    }
}

/// Shape of the job UniviStor serves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobGeometry {
    /// Compute nodes allocated.
    pub nodes: usize,
    /// Client processes per node (per application).
    pub procs_per_node: usize,
    /// UniviStor server processes per node (paper default 1; the
    /// evaluation uses 2 to exploit both NUMA sockets).
    pub servers_per_node: usize,
}

impl JobGeometry {
    /// Total client processes of one application.
    pub fn total_procs(&self) -> usize {
        self.nodes * self.procs_per_node
    }

    /// Total UniviStor servers.
    pub fn total_servers(&self) -> usize {
        self.nodes * self.servers_per_node
    }

    /// Node hosting global client rank `rank` (block distribution, as
    /// launched by the scheduler).
    pub fn node_of_rank(&self, rank: usize) -> usize {
        rank / self.procs_per_node
    }

    /// The evaluation's geometry for a given total process count:
    /// 32 procs/node, 2 servers/node (§III-A).
    pub fn paper(total_procs: usize) -> Self {
        let procs_per_node = 32.min(total_procs.max(1));
        let nodes = total_procs.div_ceil(procs_per_node).max(1);
        JobGeometry {
            nodes,
            procs_per_node,
            servers_per_node: 2,
        }
    }
}

/// Full UniviStor configuration.
#[derive(Debug, Clone)]
pub struct UniviStorConfig {
    /// Job geometry.
    pub geometry: JobGeometry,
    /// Feature toggles.
    pub features: Features,
    /// Platform constants (tier bandwidths/capacities, latencies).
    pub cal: Calibration,
    /// Log chunk size in bytes (§II-B1: log space is formatted as chunks).
    pub chunk_size: u64,
    /// Metadata range width for the distributed KV (bytes of logical
    /// offset per range).
    pub metadata_range_size: u64,
    /// α of Eq. 2 — OSTs that saturate one flushing server.
    pub alpha: usize,
    /// Segment size client writes are split into before placement.
    pub segment_size: u64,
    /// Cache on the distributed DRAM layer (off = the paper's
    /// "UniviStor/BB" and "UniviStor/(BB+Disk)" configurations).
    pub enable_dram: bool,
    /// Cache on the shared burst buffer (off together with `enable_dram`
    /// = the paper's "UniviStor/(Disk)" configuration).
    pub enable_bb: bool,
    /// Mirror volatile-layer segments to a buddy process on another node
    /// (the paper's future work: resilience for data in volatile layers).
    pub replicate_volatile: bool,
    /// Which write-path implementation to use (batched by default).
    pub write_pipeline: WritePipeline,
    /// Which read-path implementation to use (batched by default).
    pub read_pipeline: ReadPipeline,
    /// Which flush-plane implementation to use (parallel by default).
    pub flush_pipeline: FlushPipeline,
    /// Forward reads by one `(client, fid)` pair whose start matches the
    /// previous read's end before readahead kicks in. Streak detection is
    /// per client+file, so interleaved streams don't defeat it.
    pub readahead_min_streak: u32,
    /// Bytes of extra metadata lookup issued past a sequential read's end;
    /// the widened window lands in the node's read record cache, so the
    /// following reads of the scan are served without metadata RPCs.
    /// `0` disables readahead (the default for the figure configurations,
    /// whose timing plane charges per metadata RPC).
    pub readahead_window: u64,
    /// Retry budget for transient I/O faults (injected or environmental).
    /// Only consulted when an operation actually fails transiently, so
    /// the default policy costs nothing on healthy runs.
    pub retry: RetryPolicy,
    /// Deterministic fault-injection schedule. `None` (the default)
    /// constructs no injector at all: the hot paths pay only an
    /// `Option` check.
    pub fault: Option<FaultConfig>,
    /// Background tiering controller (watermark spill, continuous PFS
    /// drain, policy-driven promotion). Off by default: the data path
    /// then pays only a boolean check.
    pub tiering: TieringConfig,
    /// End-to-end data-integrity plane: write-commit checksums (on by
    /// default) and the background scrubber daemon (off by default).
    pub integrity: IntegrityConfig,
    /// Which server-core runtime executes the data plane (locked by
    /// default; the partitioned runtime is the shared-nothing
    /// message-passing implementation).
    pub runtime: Runtime,
    /// Partition-worker count for [`Runtime::Partitioned`]. `0` (the
    /// default) sizes the pool automatically: one worker per server,
    /// capped at the host's available parallelism. Explicit values are
    /// clamped to `[1, total_servers]`. Ignored under [`Runtime::Locked`].
    pub partitions: usize,
    /// Bound on queued requests per partition-worker mailbox under
    /// [`Runtime::Partitioned`]. Routers block (natural backpressure)
    /// once a worker falls this far behind; any depth ≥ 1 is
    /// deadlock-free because workers never post to each other. Ignored
    /// under [`Runtime::Locked`].
    pub mailbox_depth: usize,
}

impl UniviStorConfig {
    /// The paper's configuration for a given total client count.
    pub fn paper(total_procs: usize) -> Self {
        UniviStorConfig {
            geometry: JobGeometry::paper(total_procs),
            features: Features::default(),
            cal: Calibration::default(),
            chunk_size: 8 << 20,
            metadata_range_size: 64 << 20,
            alpha: 8,
            segment_size: 8 << 20,
            enable_dram: true,
            enable_bb: true,
            replicate_volatile: false,
            write_pipeline: WritePipeline::default(),
            read_pipeline: ReadPipeline::default(),
            flush_pipeline: FlushPipeline::default(),
            readahead_min_streak: 2,
            readahead_window: 0,
            retry: RetryPolicy::default(),
            fault: None,
            tiering: TieringConfig::default(),
            integrity: IntegrityConfig::default(),
            runtime: Runtime::default(),
            partitions: 0,
            mailbox_depth: 1024,
        }
    }

    /// Small geometry for unit tests: `nodes` × `procs_per_node`, tiny
    /// chunks/segments so spill paths trigger with kilobytes.
    ///
    /// Honors `UNIVISTOR_RUNTIME=partitioned` so CI can sweep the whole
    /// test suite under both runtimes; tests that pin runtime-specific
    /// behavior should set `cfg.runtime` explicitly after construction.
    pub fn test_small(nodes: usize, procs_per_node: usize) -> Self {
        let mut cfg = UniviStorConfig {
            geometry: JobGeometry {
                nodes,
                procs_per_node,
                servers_per_node: 2,
            },
            features: Features::default(),
            cal: Calibration::default(),
            chunk_size: 256,
            metadata_range_size: 1024,
            alpha: 8,
            segment_size: 128,
            enable_dram: true,
            enable_bb: true,
            replicate_volatile: false,
            write_pipeline: WritePipeline::default(),
            read_pipeline: ReadPipeline::default(),
            flush_pipeline: FlushPipeline::default(),
            readahead_min_streak: 2,
            readahead_window: 0,
            retry: RetryPolicy::default(),
            fault: None,
            tiering: TieringConfig::default(),
            integrity: IntegrityConfig::default(),
            runtime: Runtime::default(),
            partitions: 0,
            mailbox_depth: 1024,
        };
        // Tiny tiers so tests exercise spilling: 1 KiB DRAM per node,
        // 4 KiB per BB node.
        cfg.cal.dram_cache_capacity_per_node = 1024;
        cfg.cal.bb_capacity_per_node = 4096;
        cfg.cal.bb_nodes_min = 1;
        cfg.cal.bb_nodes_per_compute_node = 0.5;
        if std::env::var("UNIVISTOR_RUNTIME").as_deref() == Ok("partitioned") {
            cfg.runtime = Runtime::Partitioned;
        }
        cfg
    }

    /// Worker count the partitioned runtime resolves `partitions` to:
    /// auto (`0`) is one worker per server capped at the host's
    /// available parallelism; explicit values clamp to
    /// `[1, total_servers]`.
    pub fn partition_workers(&self) -> usize {
        let servers = self.geometry.total_servers().max(1);
        if self.partitions == 0 {
            let cores = std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1);
            servers.min(cores.max(1))
        } else {
            self.partitions.min(servers)
        }
    }

    /// Reject configurations that would misbehave at runtime with a
    /// typed [`SimError::InvalidConfig`] instead of silent clamping, a
    /// wedged mailbox, or an unbounded probability draw. Called by job
    /// construction ([`UniviStorJob::try_new`](crate::server::UniviStorJob::try_new));
    /// the panicking constructors surface the same message.
    pub fn validate(&self) -> SimResult<()> {
        fn prob(name: &str, p: f64) -> SimResult<()> {
            if !(0.0..=1.0).contains(&p) || p.is_nan() {
                return Err(SimError::InvalidConfig(format!(
                    "{name} must be a probability in [0, 1], got {p}"
                )));
            }
            Ok(())
        }
        if let Some(fault) = &self.fault {
            prob("fault.transient_prob", fault.transient_prob)?;
            for (tier, p) in &fault.tier_transient_prob {
                prob(&format!("fault.tier_transient_prob[{tier}]"), *p)?;
            }
            prob("fault.corrupt_prob", fault.corrupt_prob)?;
            for (tier, p) in &fault.tier_corrupt_prob {
                prob(&format!("fault.tier_corrupt_prob[{tier}]"), *p)?;
            }
        }
        for (name, tier) in [
            ("tiering.dram", Tier::Dram),
            ("tiering.node_local", Tier::NodeLocal),
            ("tiering.burst_buffer", Tier::SharedBurstBuffer),
        ] {
            let w = self.tiering.watermarks(tier).expect("finite tier");
            let ordered = w.low >= 0.0 && w.low < w.high && w.high <= 1.0;
            if !ordered || w.low.is_nan() || w.high.is_nan() {
                return Err(SimError::InvalidConfig(format!(
                    "{name} watermarks must satisfy 0 <= low < high <= 1, \
                     got low={} high={}",
                    w.low, w.high
                )));
            }
        }
        if self.mailbox_depth == 0 {
            return Err(SimError::InvalidConfig(
                "mailbox_depth must be at least 1 (a zero-depth mailbox \
                 can never deliver a request)"
                    .into(),
            ));
        }
        if self.retry.max_attempts == 0 {
            return Err(SimError::InvalidConfig(
                "retry.max_attempts must be at least 1 (zero attempts \
                 means every operation fails without running)"
                    .into(),
            ));
        }
        Ok(())
    }

    /// Start a [`UniviStorConfigBuilder`] from the paper configuration
    /// for a single 32-process node — set the geometry (and anything
    /// else) through the builder:
    ///
    /// ```ignore
    /// let cfg = UniviStorConfig::builder()
    ///     .total_procs(128)
    ///     .tiering(TieringConfig::on())
    ///     .build();
    /// ```
    pub fn builder() -> UniviStorConfigBuilder {
        UniviStorConfigBuilder {
            cfg: UniviStorConfig::paper(32),
        }
    }

    /// Continue building from this configuration (e.g. refine
    /// [`test_small`](Self::test_small) with tiering knobs).
    pub fn to_builder(self) -> UniviStorConfigBuilder {
        UniviStorConfigBuilder { cfg: self }
    }
}

/// Builder over [`UniviStorConfig`], so call sites compose the typed
/// sub-structures (`TieringConfig`, `Features`, `RetryPolicy`, …) instead
/// of mutating a growing flat field list. Created by
/// [`UniviStorConfig::builder`] (paper defaults) or
/// [`UniviStorConfig::to_builder`] (any base).
#[derive(Debug, Clone)]
pub struct UniviStorConfigBuilder {
    cfg: UniviStorConfig,
}

impl UniviStorConfigBuilder {
    /// Replace the geometry with the paper layout for `total_procs`
    /// clients (32 procs/node, 2 servers/node).
    pub fn total_procs(mut self, total_procs: usize) -> Self {
        self.cfg.geometry = JobGeometry::paper(total_procs);
        self
    }

    /// Set an explicit geometry.
    pub fn geometry(mut self, geometry: JobGeometry) -> Self {
        self.cfg.geometry = geometry;
        self
    }

    /// Set the feature toggles.
    pub fn features(mut self, features: Features) -> Self {
        self.cfg.features = features;
        self
    }

    /// Set the background tiering policy.
    pub fn tiering(mut self, tiering: TieringConfig) -> Self {
        self.cfg.tiering = tiering;
        self
    }

    /// Set the data-integrity plane (checksums + scrubber).
    pub fn integrity(mut self, integrity: IntegrityConfig) -> Self {
        self.cfg.integrity = integrity;
        self
    }

    /// Set the write pipeline implementation.
    pub fn write_pipeline(mut self, pipeline: WritePipeline) -> Self {
        self.cfg.write_pipeline = pipeline;
        self
    }

    /// Set the read pipeline implementation.
    pub fn read_pipeline(mut self, pipeline: ReadPipeline) -> Self {
        self.cfg.read_pipeline = pipeline;
        self
    }

    /// Set the flush-plane implementation.
    pub fn flush_pipeline(mut self, pipeline: FlushPipeline) -> Self {
        self.cfg.flush_pipeline = pipeline;
        self
    }

    /// Select the server-core runtime.
    pub fn runtime(mut self, runtime: Runtime) -> Self {
        self.cfg.runtime = runtime;
        self
    }

    /// Set the partition-worker count for [`Runtime::Partitioned`]
    /// (`0` = auto-size).
    pub fn partitions(mut self, partitions: usize) -> Self {
        self.cfg.partitions = partitions;
        self
    }

    /// Set the per-worker mailbox bound for [`Runtime::Partitioned`]
    /// (clamped to at least 1).
    pub fn mailbox_depth(mut self, depth: usize) -> Self {
        self.cfg.mailbox_depth = depth.max(1);
        self
    }

    /// Set the log chunk size.
    pub fn chunk_size(mut self, bytes: u64) -> Self {
        self.cfg.chunk_size = bytes;
        self
    }

    /// Set the client segment size.
    pub fn segment_size(mut self, bytes: u64) -> Self {
        self.cfg.segment_size = bytes;
        self
    }

    /// Set the transient-fault retry budget.
    pub fn retry(mut self, retry: RetryPolicy) -> Self {
        self.cfg.retry = retry;
        self
    }

    /// Install a deterministic fault-injection schedule.
    pub fn fault(mut self, fault: FaultConfig) -> Self {
        self.cfg.fault = Some(fault);
        self
    }

    /// Toggle the DRAM cache layer.
    pub fn enable_dram(mut self, on: bool) -> Self {
        self.cfg.enable_dram = on;
        self
    }

    /// Toggle the shared burst-buffer layer.
    pub fn enable_bb(mut self, on: bool) -> Self {
        self.cfg.enable_bb = on;
        self
    }

    /// Toggle buddy replication of volatile-layer segments.
    pub fn replicate_volatile(mut self, on: bool) -> Self {
        self.cfg.replicate_volatile = on;
        self
    }

    /// Finish: the assembled configuration.
    pub fn build(self) -> UniviStorConfig {
        self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_geometry_matches_evaluation_setup() {
        let g = JobGeometry::paper(8192);
        assert_eq!(g.nodes, 256);
        assert_eq!(g.procs_per_node, 32);
        assert_eq!(g.total_servers(), 512);
        let g = JobGeometry::paper(64);
        assert_eq!(g.nodes, 2);
        assert_eq!(g.total_procs(), 64);
    }

    #[test]
    fn small_proc_counts_fit_one_node() {
        let g = JobGeometry::paper(8);
        assert_eq!(g.nodes, 1);
        assert_eq!(g.procs_per_node, 8);
    }

    #[test]
    fn node_of_rank_blocks() {
        let g = JobGeometry::paper(64);
        assert_eq!(g.node_of_rank(0), 0);
        assert_eq!(g.node_of_rank(31), 0);
        assert_eq!(g.node_of_rank(32), 1);
    }

    #[test]
    fn tiering_defaults_are_off_and_sane() {
        let t = TieringConfig::default();
        assert!(!t.enabled, "tiering must default off (figure identity)");
        assert!(TieringConfig::on().enabled);
        for tier in [Tier::Dram, Tier::NodeLocal, Tier::SharedBurstBuffer] {
            let w = t.watermarks(tier).expect("finite tiers have watermarks");
            assert!(w.low < w.high && w.high <= 1.0);
        }
        assert!(t.watermarks(Tier::Pfs).is_none(), "the PFS never spills");
        assert_eq!(UniviStorConfig::paper(64).tiering, t);
    }

    #[test]
    fn builder_composes_typed_sections() {
        let cfg = UniviStorConfig::builder()
            .total_procs(128)
            .tiering(TieringConfig::on())
            .features(Features::all())
            .replicate_volatile(true)
            .build();
        assert_eq!(cfg.geometry.total_procs(), 128);
        assert!(cfg.tiering.enabled);
        assert!(cfg.features.workflow);
        assert!(cfg.replicate_volatile);
        // A builder over an existing base only changes what it is told to.
        let small = UniviStorConfig::test_small(2, 2)
            .to_builder()
            .tiering(TieringConfig {
                drain_cadence_ops: 8,
                ..TieringConfig::on()
            })
            .build();
        assert_eq!(small.chunk_size, 256);
        assert_eq!(small.tiering.drain_cadence_ops, 8);
    }

    #[test]
    fn integrity_defaults_checksums_on_scrubber_off() {
        let i = IntegrityConfig::default();
        assert!(i.checksums, "checksums default on");
        assert!(!i.scrub.enabled, "scrubber must default off");
        assert!(ScrubConfig::on().enabled);
        assert_eq!(UniviStorConfig::paper(64).integrity, i);
        let cfg = UniviStorConfig::builder()
            .integrity(IntegrityConfig {
                checksums: false,
                scrub: ScrubConfig::on(),
            })
            .build();
        assert!(!cfg.integrity.checksums && cfg.integrity.scrub.enabled);
    }

    #[test]
    fn validate_accepts_the_shipping_configurations() {
        UniviStorConfig::paper(64).validate().expect("paper config");
        UniviStorConfig::test_small(2, 2)
            .validate()
            .expect("test config");
    }

    #[test]
    fn validate_rejects_out_of_range_probabilities() {
        let mut cfg = UniviStorConfig::test_small(1, 2);
        cfg.fault = Some(FaultConfig {
            transient_prob: 1.5,
            ..FaultConfig::default()
        });
        let err = cfg.validate().unwrap_err().to_string();
        assert!(err.contains("transient_prob"), "{err}");

        let mut cfg = UniviStorConfig::test_small(1, 2);
        cfg.fault = Some(FaultConfig {
            corrupt_prob: -0.1,
            ..FaultConfig::default()
        });
        let err = cfg.validate().unwrap_err().to_string();
        assert!(err.contains("corrupt_prob"), "{err}");

        let mut cfg = UniviStorConfig::test_small(1, 2);
        cfg.fault = Some(FaultConfig {
            tier_corrupt_prob: vec![(Tier::Pfs, 2.0)],
            ..FaultConfig::default()
        });
        let err = cfg.validate().unwrap_err().to_string();
        assert!(err.contains("tier_corrupt_prob"), "{err}");
    }

    #[test]
    fn validate_rejects_inverted_watermarks() {
        let mut cfg = UniviStorConfig::test_small(1, 2);
        cfg.tiering.dram = TierWatermarks {
            high: 0.3,
            low: 0.8,
        };
        let err = cfg.validate().unwrap_err().to_string();
        assert!(err.contains("tiering.dram"), "{err}");
        assert!(err.contains("low < high"), "{err}");
    }

    #[test]
    fn validate_rejects_zero_mailbox_depth() {
        let mut cfg = UniviStorConfig::test_small(1, 2);
        cfg.mailbox_depth = 0;
        let err = cfg.validate().unwrap_err().to_string();
        assert!(err.contains("mailbox_depth"), "{err}");
    }

    #[test]
    fn validate_rejects_zero_attempt_retry_policy() {
        let mut cfg = UniviStorConfig::test_small(1, 2);
        cfg.retry.max_attempts = 0;
        let err = cfg.validate().unwrap_err().to_string();
        assert!(err.contains("max_attempts"), "{err}");
    }

    #[test]
    fn feature_presets() {
        assert!(Features::default().adaptive_striping);
        assert!(!Features::default().workflow);
        assert!(Features::all().workflow);
        let none = Features::none();
        assert!(!none.interference_aware && !none.collective_open_close);
    }
}
