//! Lightweight workflow management (§II-E).
//!
//! Coupled applications (a simulation writing, an analysis reading) must
//! not observe partial data. UniviStor coordinates them through a shared
//! **state file**: a writing application locks a file by setting its state
//! to WRITING and releases it with WRITE_DONE; readers wait for WRITING to
//! clear and mark READING/READ_DONE; FLUSHING/FLUSH_DONE guard against a
//! writer overwriting a file the servers are flushing. Lock
//! acquire/release piggybacks on the *collective* `MPI_File_open` /
//! `MPI_File_close`: only the root process touches the state file, so the
//! mechanism adds no per-rank synchronization.
//!
//! The coordinator here is the state file: a shared map with condition-
//! variable waiting, usable from the threaded SPMD runtime so a reader
//! genuinely blocks until its producer closes the file.

use std::collections::HashMap;
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// Per-file workflow states, exactly the paper's set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileState {
    /// Never touched (implicit initial state).
    Idle,
    /// A writer holds the file.
    Writing,
    /// Last writer finished.
    WriteDone,
    /// One or more readers hold the file.
    Reading,
    /// Last reader finished.
    ReadDone,
    /// Servers are flushing the file to the PFS.
    Flushing,
    /// Flush complete.
    FlushDone,
}

#[derive(Debug, Default)]
struct Entry {
    state: Option<FileState>,
    readers: u32,
}

impl Entry {
    fn state(&self) -> FileState {
        self.state.unwrap_or(FileState::Idle)
    }
}

#[derive(Debug, Default)]
struct Inner {
    files: HashMap<String, Entry>,
    /// Total blocking waits (for tests/metrics).
    waits: u64,
}

/// The shared state file. Cloneable handles all point at one map.
#[derive(Debug, Default)]
pub struct StateFile {
    inner: Mutex<Inner>,
    cond: Condvar,
}

/// Wait timeout: workflow bugs should fail tests, not hang them.
const WAIT_TIMEOUT: Duration = Duration::from_secs(30);

impl StateFile {
    /// An empty state file.
    pub fn new() -> Self {
        Self::default()
    }

    fn wait_until(&self, path: &str, ready: impl Fn(&Entry) -> bool) -> bool {
        let mut inner = self.inner.lock().unwrap();
        let mut waited = false;
        loop {
            let entry = inner.files.entry(path.to_string()).or_default();
            if ready(entry) {
                return waited;
            }
            waited = true;
            inner.waits += 1;
            let (guard, timeout) = self
                .cond
                .wait_timeout(inner, WAIT_TIMEOUT)
                .expect("state file lock poisoned");
            inner = guard;
            assert!(
                !timeout.timed_out(),
                "workflow wait on '{path}' timed out — deadlock?"
            );
        }
    }

    /// Writer lock: waits while the file is being written, read or
    /// flushed; then marks WRITING. Returns true if the caller had to wait.
    pub fn acquire_write(&self, path: &str) -> bool {
        let waited = self.wait_until(path, |e| {
            !matches!(e.state(), FileState::Writing | FileState::Flushing) && e.readers == 0
        });
        let mut inner = self.inner.lock().unwrap();
        let entry = inner.files.entry(path.to_string()).or_default();
        entry.state = Some(FileState::Writing);
        waited
    }

    /// Writer unlock: WRITING → WRITE_DONE, wake waiters.
    pub fn release_write(&self, path: &str) {
        let mut inner = self.inner.lock().unwrap();
        let entry = inner.files.entry(path.to_string()).or_default();
        assert_eq!(
            entry.state(),
            FileState::Writing,
            "release_write without write lock on '{path}'"
        );
        entry.state = Some(FileState::WriteDone);
        drop(inner);
        self.cond.notify_all();
    }

    /// Reader lock: waits while the file is being written; then joins the
    /// reader group (concurrent readers share). Returns true if it waited.
    ///
    /// Readers joining during FLUSHING leave the state alone: they read
    /// the still-cached data while the servers drain (§II-E), and the
    /// flush transition must survive until `end_flush`.
    pub fn acquire_read(&self, path: &str) -> bool {
        let waited = self.wait_until(path, |e| e.state() != FileState::Writing);
        let mut inner = self.inner.lock().unwrap();
        let entry = inner.files.entry(path.to_string()).or_default();
        entry.readers += 1;
        if entry.state() != FileState::Flushing {
            entry.state = Some(FileState::Reading);
        }
        waited
    }

    /// Reader lock for a file the producer may not even have created yet
    /// (the in-situ case): waits until the file has been written at least
    /// once (any post-WRITING state), then joins the reader group.
    pub fn acquire_read_produced(&self, path: &str) -> bool {
        let waited = self.wait_until(path, |e| {
            !matches!(e.state(), FileState::Idle | FileState::Writing)
        });
        let mut inner = self.inner.lock().unwrap();
        let entry = inner.files.entry(path.to_string()).or_default();
        entry.readers += 1;
        if entry.state() != FileState::Flushing {
            entry.state = Some(FileState::Reading);
        }
        waited
    }

    /// Reader unlock: last reader sets READ_DONE — unless the servers are
    /// mid-flush, in which case FLUSHING stays until `end_flush` (the
    /// reader group count alone records that the readers left).
    pub fn release_read(&self, path: &str) {
        let mut inner = self.inner.lock().unwrap();
        let entry = inner.files.entry(path.to_string()).or_default();
        assert!(
            entry.readers > 0,
            "release_read without read lock on '{path}'"
        );
        entry.readers -= 1;
        if entry.readers == 0 && entry.state() != FileState::Flushing {
            entry.state = Some(FileState::ReadDone);
        }
        drop(inner);
        self.cond.notify_all();
    }

    /// Server-side flush begin: waits for writers, then marks FLUSHING.
    /// Concurrent readers are fine — they read the still-cached data.
    pub fn begin_flush(&self, path: &str) -> bool {
        let waited = self.wait_until(path, |e| e.state() != FileState::Writing);
        let mut inner = self.inner.lock().unwrap();
        let entry = inner.files.entry(path.to_string()).or_default();
        entry.state = Some(FileState::Flushing);
        waited
    }

    /// Flush end: FLUSHING → FLUSH_DONE.
    pub fn end_flush(&self, path: &str) {
        let mut inner = self.inner.lock().unwrap();
        let entry = inner.files.entry(path.to_string()).or_default();
        assert_eq!(
            entry.state(),
            FileState::Flushing,
            "end_flush without begin_flush on '{path}'"
        );
        entry.state = Some(FileState::FlushDone);
        drop(inner);
        self.cond.notify_all();
    }

    /// Current state of a file.
    pub fn state_of(&self, path: &str) -> FileState {
        let inner = self.inner.lock().unwrap();
        inner
            .files
            .get(path)
            .map(|e| e.state())
            .unwrap_or(FileState::Idle)
    }

    /// Total blocking waits so far.
    pub fn wait_count(&self) -> u64 {
        self.inner.lock().unwrap().waits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
    use std::sync::Arc;

    #[test]
    fn write_read_state_transitions() {
        let sf = StateFile::new();
        assert_eq!(sf.state_of("/f"), FileState::Idle);
        assert!(!sf.acquire_write("/f"));
        assert_eq!(sf.state_of("/f"), FileState::Writing);
        sf.release_write("/f");
        assert_eq!(sf.state_of("/f"), FileState::WriteDone);
        assert!(!sf.acquire_read("/f"));
        assert_eq!(sf.state_of("/f"), FileState::Reading);
        sf.release_read("/f");
        assert_eq!(sf.state_of("/f"), FileState::ReadDone);
    }

    #[test]
    fn reader_blocks_until_writer_finishes() {
        let sf = Arc::new(StateFile::new());
        sf.acquire_write("/data");
        let writer_done = Arc::new(AtomicBool::new(false));

        let sf2 = Arc::clone(&sf);
        let done2 = Arc::clone(&writer_done);
        let reader = std::thread::spawn(move || {
            let waited = sf2.acquire_read("/data");
            // The writer must have finished before we got the lock.
            assert!(done2.load(Ordering::SeqCst));
            sf2.release_read("/data");
            waited
        });

        std::thread::sleep(Duration::from_millis(50));
        writer_done.store(true, Ordering::SeqCst);
        sf.release_write("/data");
        assert!(
            reader.join().expect("reader panicked"),
            "reader never waited"
        );
    }

    #[test]
    fn writer_blocks_on_readers() {
        let sf = Arc::new(StateFile::new());
        sf.acquire_read("/f");
        sf.acquire_read("/f"); // two concurrent readers share

        let sf2 = Arc::clone(&sf);
        let readers_left = Arc::new(AtomicU32::new(2));
        let left2 = Arc::clone(&readers_left);
        let writer = std::thread::spawn(move || {
            sf2.acquire_write("/f");
            assert_eq!(left2.load(Ordering::SeqCst), 0);
            sf2.release_write("/f");
        });

        std::thread::sleep(Duration::from_millis(30));
        readers_left.fetch_sub(1, Ordering::SeqCst);
        sf.release_read("/f");
        std::thread::sleep(Duration::from_millis(30));
        readers_left.fetch_sub(1, Ordering::SeqCst);
        sf.release_read("/f");
        writer.join().expect("writer panicked");
    }

    #[test]
    fn flush_blocks_writers_not_readers() {
        let sf = Arc::new(StateFile::new());
        sf.acquire_write("/f");
        sf.release_write("/f");
        assert!(!sf.begin_flush("/f"));
        // A reader proceeds during the flush, and its join/leave leaves
        // the FLUSHING transition intact for `end_flush`.
        assert!(!sf.acquire_read("/f"));
        assert_eq!(sf.state_of("/f"), FileState::Flushing);
        sf.release_read("/f");
        assert_eq!(sf.state_of("/f"), FileState::Flushing);

        let sf2 = Arc::clone(&sf);
        let flushed = Arc::new(AtomicBool::new(false));
        let fl2 = Arc::clone(&flushed);
        let writer = std::thread::spawn(move || {
            sf2.acquire_write("/f");
            assert!(fl2.load(Ordering::SeqCst));
            sf2.release_write("/f");
        });
        std::thread::sleep(Duration::from_millis(50));
        flushed.store(true, Ordering::SeqCst);
        sf.end_flush("/f");
        writer.join().expect("writer panicked");
    }

    #[test]
    fn files_are_independent() {
        let sf = StateFile::new();
        sf.acquire_write("/a");
        // Locking /a must not block /b at all.
        assert!(!sf.acquire_write("/b"));
        sf.release_write("/b");
        sf.release_write("/a");
    }

    #[test]
    #[should_panic(expected = "without write lock")]
    fn unbalanced_release_panics() {
        let sf = StateFile::new();
        sf.release_write("/f");
    }

    #[test]
    fn full_lifecycle_write_flush_rewrite() {
        let sf = StateFile::new();
        sf.acquire_write("/f");
        sf.release_write("/f");
        sf.begin_flush("/f");
        sf.end_flush("/f");
        assert_eq!(sf.state_of("/f"), FileState::FlushDone);
        // A second producer cycle proceeds from FLUSH_DONE.
        assert!(!sf.acquire_write("/f"));
        sf.release_write("/f");
        assert_eq!(sf.state_of("/f"), FileState::WriteDone);
    }

    #[test]
    fn acquire_read_produced_waits_for_first_write() {
        let sf = Arc::new(StateFile::new());
        let sf2 = Arc::clone(&sf);
        let produced = Arc::new(AtomicBool::new(false));
        let p2 = Arc::clone(&produced);
        let reader = std::thread::spawn(move || {
            let waited = sf2.acquire_read_produced("/future");
            assert!(p2.load(Ordering::SeqCst), "read before any write");
            sf2.release_read("/future");
            waited
        });
        std::thread::sleep(Duration::from_millis(40));
        sf.acquire_write("/future");
        produced.store(true, Ordering::SeqCst);
        sf.release_write("/future");
        assert!(reader.join().expect("reader"), "reader never waited");
    }

    #[test]
    fn wait_count_observable() {
        let sf = Arc::new(StateFile::new());
        sf.acquire_write("/f");
        let sf2 = Arc::clone(&sf);
        let t = std::thread::spawn(move || {
            sf2.acquire_read("/f");
            sf2.release_read("/f");
        });
        std::thread::sleep(Duration::from_millis(30));
        sf.release_write("/f");
        t.join().expect("reader");
        assert!(sf.wait_count() >= 1);
    }
}
