//! Interference-aware resource scheduling (§II-C, Fig. 4).
//!
//! UniviStor servers know how many processes of each parallel program
//! (including themselves) share each node, and use that to replace the
//! oblivious CFS placement:
//!
//! 1. **NUMA spreading** — each program's processes are spread evenly
//!    across the sockets; remainders go to the less-loaded socket
//!    (Fig. 4b).
//! 2. **State-aware stacking** — when processes outnumber cores, extra
//!    client processes stack on *server* cores, which are idle outside
//!    flush phases (Fig. 4d), rather than on busy client cores (Fig. 4c).
//! 3. **Flush migration** — when a flush starts, client processes sharing
//!    a server core are migrated to other cores so servers flush without
//!    interference; they move back afterwards.

use crate::metrics::SchedCounters;
use univistor_sim::cores::{CoreAssignment, NodeShape, PlacementPolicy, ProcSlot, SERVER_PROGRAM};

/// The interference-aware placement policy.
#[derive(Debug, Default)]
pub struct InterferenceAwarePolicy {
    counters: Option<SchedCounters>,
}

impl InterferenceAwarePolicy {
    /// New policy (placement is fully deterministic).
    pub fn new() -> Self {
        Self::default()
    }

    /// New policy reporting each placement decision (free core vs.
    /// stacked) into a job's telemetry panel — obtain the counters from
    /// [`crate::metrics::JobMetrics::sched_counters`].
    pub fn instrumented(counters: SchedCounters) -> Self {
        Self {
            counters: Some(counters),
        }
    }
}

impl PlacementPolicy for InterferenceAwarePolicy {
    fn place(&mut self, shape: NodeShape, programs: &[(u32, usize)]) -> CoreAssignment {
        let mut assignment = CoreAssignment::new(shape);
        let mut socket_load = vec![0usize; shape.sockets];

        for &(program, count) in programs {
            // Spread this program across sockets: base share everywhere,
            // remainders to the least-loaded sockets.
            let base = count / shape.sockets;
            let remainder = count % shape.sockets;
            let mut shares = vec![base; shape.sockets];
            // Order sockets by current load (stable by index) and give the
            // remainder to the least loaded ones.
            let mut order: Vec<usize> = (0..shape.sockets).collect();
            order.sort_by_key(|&s| (socket_load[s], s));
            for &s in order.iter().take(remainder) {
                shares[s] += 1;
            }

            let mut index = 0u32;
            for (socket, &share) in shares.iter().enumerate() {
                socket_load[socket] += share;
                for _ in 0..share {
                    let core = pick_core(&assignment, shape, socket, program);
                    if let Some(c) = &self.counters {
                        if assignment.procs_on_core(core).is_empty() {
                            c.free_core.inc();
                        } else {
                            c.stacked.inc();
                        }
                    }
                    assignment.assign(ProcSlot { program, index }, core);
                    index += 1;
                }
            }
        }
        assignment
    }
}

/// Choose the best core of `socket` for a process of `program`:
/// 1. a free core;
/// 2. otherwise (oversubscription) the core with the fewest processes of
///    *other non-server* programs — i.e. prefer stacking on idle server
///    cores (state-aware, Fig. 4d) unless the program being placed *is*
///    the server program, which prefers client cores symmetric­ally;
/// 3. ties broken by total occupancy, then core index.
fn pick_core(assignment: &CoreAssignment, shape: NodeShape, socket: usize, program: u32) -> usize {
    shape
        .cores_of_socket(socket)
        .min_by_key(|&core| {
            let procs = assignment.procs_on_core(core);
            let busy_conflicts = procs
                .iter()
                .filter(|p| {
                    if program == SERVER_PROGRAM {
                        // A server avoids cores with other servers.
                        p.program == SERVER_PROGRAM
                    } else {
                        // A client avoids cores with other clients; a
                        // lone server is the preferred stacking target.
                        p.program != SERVER_PROGRAM
                    }
                })
                .count();
            (busy_conflicts, procs.len(), core)
        })
        .expect("socket has cores")
}

/// Migrate client processes off server cores for the duration of a flush
/// (Fig. 4d, right). Returns the moved slots with their original cores so
/// [`restore_after_flush`] can undo the migration.
pub fn migrate_for_flush(assignment: &mut CoreAssignment) -> Vec<(ProcSlot, usize)> {
    migrate_for_flush_counted(assignment, None)
}

/// [`migrate_for_flush`], reporting each migration into a telemetry panel.
pub fn migrate_for_flush_counted(
    assignment: &mut CoreAssignment,
    counters: Option<&SchedCounters>,
) -> Vec<(ProcSlot, usize)> {
    let shape = assignment.shape;
    let mut moved = Vec::new();
    for core in 0..shape.cores() {
        if !assignment
            .procs_on_core(core)
            .iter()
            .any(|p| p.program == SERVER_PROGRAM)
        {
            continue;
        }
        // Walk the core's live slot list by re-borrowing it after each
        // migration (which compacts the list in place, preserving
        // relative order) instead of cloning it: `skip` counts the
        // unmovable slots already passed over. Nothing migrates *into* a
        // server core, so the walk visits exactly the original clients.
        let mut skip = 0;
        loop {
            let slot = assignment
                .procs_on_core(core)
                .iter()
                .filter(|p| p.program != SERVER_PROGRAM)
                .nth(skip)
                .copied();
            let Some(slot) = slot else { break };
            // Least-loaded core without a server, same socket preferred.
            let socket = shape.socket_of(core);
            let candidates = shape
                .cores_of_socket(socket)
                .chain(0..shape.cores())
                .filter(|&c| {
                    c != core
                        && !assignment
                            .procs_on_core(c)
                            .iter()
                            .any(|p| p.program == SERVER_PROGRAM)
                });
            if let Some(target) = candidates.min_by_key(|&c| (assignment.procs_on_core(c).len(), c))
            {
                if let Some(c) = counters {
                    c.flush_migrations.inc();
                }
                moved.push((slot, core));
                assignment.migrate(slot, target);
            } else {
                skip += 1;
            }
        }
    }
    moved
}

/// Undo [`migrate_for_flush`].
pub fn restore_after_flush(assignment: &mut CoreAssignment, moved: Vec<(ProcSlot, usize)>) {
    for (slot, core) in moved {
        assignment.migrate(slot, core);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use univistor_sim::cores::{CfsPolicy, ContentionModel};

    /// Fig. 4 node: 2 sockets × 3 cores.
    const SHAPE: NodeShape = NodeShape {
        sockets: 2,
        cores_per_socket: 3,
    };

    #[test]
    fn fig4b_every_program_spreads_across_sockets() {
        // App 1 ×2, App 2 ×2, servers ×2 on 6 cores: one process per core,
        // each program on both sockets.
        let programs = [(0u32, 2usize), (1, 2), (SERVER_PROGRAM, 2)];
        let a = InterferenceAwarePolicy::new().place(SHAPE, &programs);
        assert_eq!(a.stacked_cores(), 0);
        assert_eq!(a.numa_imbalance(), 0);
        for &(program, _) in &programs {
            let sockets: std::collections::HashSet<usize> = a
                .slots()
                .filter(|s| s.program == program)
                .map(|s| SHAPE.socket_of(a.core_of(s).expect("placed")))
                .collect();
            assert_eq!(sockets.len(), 2, "program {program} not spread");
        }
    }

    #[test]
    fn fig4d_oversubscription_stacks_on_server_cores() {
        // App 1 ×4, App 2 ×2, servers ×2 → 8 procs on 6 cores. The two
        // extra client processes must land on the two server cores.
        let programs = [(0u32, 4usize), (1, 2), (SERVER_PROGRAM, 2)];
        let a = InterferenceAwarePolicy::new().place(SHAPE, &programs);
        for core in 0..SHAPE.cores() {
            let procs = a.procs_on_core(core);
            if procs.len() > 1 {
                assert!(
                    procs.iter().any(|p| p.program == SERVER_PROGRAM),
                    "stacked core {core} has no server: {procs:?}"
                );
            }
        }
    }

    #[test]
    fn remainders_go_to_less_loaded_socket() {
        // 3 processes of one program on 2 sockets: 2 + 1. A second
        // 3-process program must put its extra on the other socket.
        let programs = [(0u32, 3usize), (1, 3)];
        let a = InterferenceAwarePolicy::new().place(SHAPE, &programs);
        assert_eq!(a.numa_imbalance(), 0);
    }

    #[test]
    fn flush_migration_clears_server_cores_and_restores() {
        // Oversubscribed: 6 clients + 2 servers on 6 cores → two clients
        // are stacked on the server cores and must migrate for the flush.
        let programs = [(0u32, 6usize), (SERVER_PROGRAM, 2)];
        let mut a = InterferenceAwarePolicy::new().place(SHAPE, &programs);
        let before: Vec<Option<usize>> = a.slots().map(|s| a.core_of(s)).collect();
        let moved = migrate_for_flush(&mut a);
        assert!(!moved.is_empty());
        // No server core hosts a client during the flush.
        for core in 0..SHAPE.cores() {
            let procs = a.procs_on_core(core);
            let has_server = procs.iter().any(|p| p.program == SERVER_PROGRAM);
            let has_client = procs.iter().any(|p| p.program != SERVER_PROGRAM);
            assert!(
                !(has_server && has_client),
                "core {core} mixed during flush"
            );
        }
        restore_after_flush(&mut a, moved);
        let after: Vec<Option<usize>> = a.slots().map(|s| a.core_of(s)).collect();
        // Restoration is exact (slots() iteration order is stable between
        // calls because no insertions happened in between).
        assert_eq!(before, after);
    }

    #[test]
    fn ia_beats_cfs_on_worst_case_rate() {
        // Paper-shaped node: 2×16 cores, 32 clients + 2 servers. The IA
        // policy's worst per-process rate must dominate the CFS baseline's
        // across seeds (the phase time is set by the slowest process).
        let shape = NodeShape {
            sockets: 2,
            cores_per_socket: 16,
        };
        let programs = [(0u32, 32usize), (SERVER_PROGRAM, 2)];
        let model = ContentionModel {
            per_proc_copy_bw: 1.5e9,
            ctx_switch_efficiency: 0.7,
        };
        let ia = InterferenceAwarePolicy::new().place(shape, &programs);
        let ia_worst = model
            .proc_rates(&ia, |s| s.program == 0)
            .iter()
            .map(|r| r.rate_cap)
            .fold(f64::INFINITY, f64::min);

        let mut cfs_better = 0;
        for seed in 0..20 {
            let cfs = CfsPolicy::new(seed, 0.3).place(shape, &programs);
            let cfs_worst = model
                .proc_rates(&cfs, |s| s.program == 0)
                .iter()
                .map(|r| r.rate_cap)
                .fold(f64::INFINITY, f64::min);
            if cfs_worst >= ia_worst {
                cfs_better += 1;
            }
        }
        assert!(
            cfs_better <= 2,
            "CFS matched IA on {cfs_better}/20 seeds — interference model broken"
        );
    }

    #[test]
    fn instrumented_policy_counts_decisions() {
        use crate::metrics::JobMetrics;
        // 8 procs on 6 cores: 6 land on free cores, 2 stack; the flush
        // then migrates the 2 stacked clients off the server cores.
        let m = JobMetrics::new();
        let programs = [(0u32, 6usize), (SERVER_PROGRAM, 2)];
        let mut a =
            InterferenceAwarePolicy::instrumented(m.sched_counters()).place(SHAPE, &programs);
        let counters = m.sched_counters();
        let moved = migrate_for_flush_counted(&mut a, Some(&counters));
        let snap = m.snapshot();
        assert_eq!(
            snap.counter(
                "univistor_sched_decisions_total",
                &[("decision", "free_core")]
            ),
            Some(6)
        );
        assert_eq!(
            snap.counter(
                "univistor_sched_decisions_total",
                &[("decision", "stacked")]
            ),
            Some(2)
        );
        assert_eq!(
            snap.counter(
                "univistor_sched_decisions_total",
                &[("decision", "flush_migration")]
            ),
            Some(moved.len() as u64)
        );
    }

    #[test]
    fn servers_spread_across_sockets() {
        let programs = [(SERVER_PROGRAM, 2usize)];
        let a = InterferenceAwarePolicy::new().place(SHAPE, &programs);
        let sockets: Vec<usize> = a
            .slots()
            .map(|s| SHAPE.socket_of(a.core_of(s).expect("placed")))
            .collect();
        assert_ne!(sockets[0], sockets[1]);
    }
}
