//! Log-structured per-process, per-layer files (§II-B1).
//!
//! Each log's space is formatted as fixed-size **chunks**. Appends fill the
//! current chunk sequentially (maximizing device bandwidth with a
//! sequential pattern); when a chunk is used up, a new chunk id is popped
//! from the **free-chunk stack**; when a chunk's contents are deleted or
//! fully overwritten, its id is pushed back for reuse.
//!
//! Addresses within a log are plain byte offsets
//! (`chunk_id * chunk_size + offset_in_chunk`), which is what Eq. 1 turns
//! into virtual addresses.
//!
//! Bookkeeping is lazy (maps keyed by chunk id, a frontier counter for
//! never-used chunks) so that a log representing an effectively unbounded
//! layer — the per-process log *file* on the PFS — costs memory only for
//! the chunks actually touched.

use std::collections::HashMap;
use univistor_sim::{Payload, SimError, SimResult, SparseBuffer};

/// A segment's location within a log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LogAddr(pub u64);

/// One log file.
#[derive(Debug)]
pub struct LogFile {
    chunk_size: u64,
    n_chunks: u64,
    /// Chunk ids recycled by `release` (stack; top = next to reuse).
    recycled: Vec<u64>,
    /// First chunk id never handed out.
    frontier: u64,
    /// Per-chunk fill cursor (bytes appended since last recycle).
    fill: HashMap<u64, u64>,
    /// Per-chunk live (unreleased) bytes.
    live: HashMap<u64, u64>,
    live_total: u64,
    /// The chunk currently accepting appends.
    active: Option<u64>,
    /// Byte store addressed by LogAddr.
    data: SparseBuffer,
    appended_segments: u64,
}

impl LogFile {
    /// A log of `capacity` bytes formatted into `capacity / chunk_size`
    /// chunks (a trailing partial chunk is not usable, as in the paper's
    /// fixed-chunk format). `capacity == u64::MAX` gives an effectively
    /// unbounded log.
    pub fn new(capacity: u64, chunk_size: u64) -> SimResult<Self> {
        if chunk_size == 0 {
            return Err(SimError::InvalidConfig(
                "chunk_size must be positive".into(),
            ));
        }
        let n_chunks = capacity / chunk_size;
        if n_chunks == 0 {
            return Err(SimError::InvalidConfig(format!(
                "capacity {capacity} below one chunk ({chunk_size})"
            )));
        }
        Ok(LogFile {
            chunk_size,
            n_chunks,
            recycled: Vec::new(),
            frontier: 0,
            fill: HashMap::new(),
            live: HashMap::new(),
            live_total: 0,
            active: None,
            data: SparseBuffer::new(),
            appended_segments: 0,
        })
    }

    /// Usable capacity (whole chunks). Saturates for unbounded logs.
    pub fn capacity(&self) -> u64 {
        self.n_chunks.saturating_mul(self.chunk_size)
    }

    /// Chunk size.
    pub fn chunk_size(&self) -> u64 {
        self.chunk_size
    }

    fn active_room(&self) -> u64 {
        self.active
            .map(|c| self.chunk_size - self.fill.get(&c).copied().unwrap_or(0))
            .unwrap_or(0)
    }

    /// Chunk ids currently free (recycled + never used).
    pub fn free_chunks(&self) -> u64 {
        self.recycled.len() as u64 + (self.n_chunks - self.frontier)
    }

    /// Bytes that could still be appended without freeing anything
    /// (remaining space in the active chunk + whole free chunks).
    pub fn appendable(&self) -> u64 {
        self.active_room()
            .saturating_add(self.free_chunks().saturating_mul(self.chunk_size))
    }

    /// True when `len` more bytes fit in one chunk-contiguous append.
    /// (`len` must not exceed the chunk size — callers segment writes.)
    pub fn fits(&self, len: u64) -> bool {
        debug_assert!(len <= self.chunk_size, "segment larger than a chunk");
        len <= self.active_room() || self.free_chunks() > 0
    }

    fn pop_free(&mut self) -> Option<u64> {
        if let Some(c) = self.recycled.pop() {
            return Some(c);
        }
        if self.frontier < self.n_chunks {
            let c = self.frontier;
            self.frontier += 1;
            return Some(c);
        }
        None
    }

    /// Append one segment (≤ chunk size). Returns its address.
    pub fn append(&mut self, payload: Payload) -> SimResult<LogAddr> {
        let len = payload.len();
        if len == 0 {
            return Err(SimError::InvalidFlow("empty segment append".into()));
        }
        if len > self.chunk_size {
            return Err(SimError::InvalidFlow(format!(
                "segment of {len} bytes exceeds chunk size {}",
                self.chunk_size
            )));
        }
        // Ensure an active chunk with room.
        let chunk = match self.active {
            Some(c) if self.chunk_size - self.fill.get(&c).copied().unwrap_or(0) >= len => c,
            _ => {
                let c = self.pop_free().ok_or(SimError::OutOfCapacity {
                    requested: len,
                    available: self.active_room(),
                })?;
                self.active = Some(c);
                c
            }
        };
        let offset_in_chunk = self.fill.get(&chunk).copied().unwrap_or(0);
        let addr = chunk * self.chunk_size + offset_in_chunk;
        *self.fill.entry(chunk).or_insert(0) += len;
        *self.live.entry(chunk).or_insert(0) += len;
        self.live_total += len;
        self.data.write(addr, payload);
        self.appended_segments += 1;
        Ok(LogAddr(addr))
    }

    /// Read `len` bytes at `addr`.
    pub fn read(&self, addr: LogAddr, len: u64) -> SimResult<Payload> {
        self.data.read_exact(addr.0, len)
    }

    /// Release a previously appended span (logical overwrite/delete).
    /// The span may cross chunk boundaries — coalesced records merge
    /// address-adjacent appends, so their displaced spans can cover the
    /// seam between two exactly-filled chunks; each covered chunk is
    /// debited for its own bytes. When a chunk's live bytes reach zero,
    /// its id returns to the free stack for reuse. Chunks are processed
    /// highest-first so a multi-chunk release pushes ids onto the stack in
    /// descending order and the next appends pop them back ascending —
    /// freed runs are reused front to back, address-contiguously.
    pub fn release(&mut self, addr: LogAddr, len: u64) {
        let start = addr.0;
        let mut end = start + len;
        while end > start {
            let chunk = (end - 1) / self.chunk_size;
            assert!(chunk < self.n_chunks, "release beyond log");
            let span_start = (chunk * self.chunk_size).max(start);
            let n = end - span_start;
            let live = self
                .live
                .get_mut(&chunk)
                .expect("release of never-written chunk");
            assert!(*live >= n, "releasing more than live bytes in chunk");
            *live -= n;
            self.live_total -= n;
            if *live == 0 {
                // Reset fill cursor and recycle the chunk id.
                self.live.remove(&chunk);
                self.fill.remove(&chunk);
                if self.active == Some(chunk) {
                    self.active = None;
                }
                self.recycled.push(chunk);
            }
            end = span_start;
        }
    }

    /// Live (not released) bytes in the log.
    pub fn live_bytes(&self) -> u64 {
        self.live_total
    }

    /// Total segments ever appended.
    pub fn appended_segments(&self) -> u64 {
        self.appended_segments
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn log() -> LogFile {
        LogFile::new(1024, 256).unwrap()
    }

    #[test]
    fn appends_are_sequential_within_chunk() {
        let mut l = log();
        let a = l.append(Payload::pattern(1, 100)).unwrap();
        let b = l.append(Payload::pattern(2, 100)).unwrap();
        assert_eq!(a, LogAddr(0));
        assert_eq!(b, LogAddr(100));
        assert!(l
            .read(a, 100)
            .unwrap()
            .content_eq(&Payload::pattern(1, 100)));
        assert!(l
            .read(b, 100)
            .unwrap()
            .content_eq(&Payload::pattern(2, 100)));
    }

    #[test]
    fn chunk_rollover_pops_next_free_id() {
        let mut l = log();
        l.append(Payload::pattern(1, 200)).unwrap();
        // 56 bytes left in chunk 0; a 100-byte segment opens chunk 1.
        let b = l.append(Payload::pattern(2, 100)).unwrap();
        assert_eq!(b, LogAddr(256));
        assert_eq!(l.free_chunks(), 2);
    }

    #[test]
    fn capacity_exhaustion_errors() {
        let mut l = log();
        for i in 0..4 {
            l.append(Payload::pattern(i, 256)).unwrap();
        }
        assert!(matches!(
            l.append(Payload::pattern(9, 1)),
            Err(SimError::OutOfCapacity { .. })
        ));
        assert_eq!(l.appendable(), 0);
    }

    #[test]
    fn release_recycles_chunks() {
        let mut l = log();
        let addrs: Vec<LogAddr> = (0..4)
            .map(|i| l.append(Payload::pattern(i, 256)).unwrap())
            .collect();
        assert_eq!(l.free_chunks(), 0);
        // Free the second chunk entirely; its id is reused next.
        l.release(addrs[1], 256);
        assert_eq!(l.free_chunks(), 1);
        let again = l.append(Payload::pattern(9, 256)).unwrap();
        assert_eq!(again, LogAddr(256));
    }

    #[test]
    fn partial_release_keeps_chunk_busy() {
        let mut l = log();
        let a = l.append(Payload::pattern(1, 100)).unwrap();
        l.append(Payload::pattern(2, 100)).unwrap();
        l.release(a, 100);
        // Chunk 0 still has 100 live bytes.
        assert_eq!(l.live_bytes(), 100);
        assert_eq!(l.free_chunks(), 3);
    }

    #[test]
    fn release_spanning_exactly_filled_chunks() {
        let mut l = log();
        // Two 256-byte appends fill chunks 0 and 1 back to back, so their
        // addresses are contiguous — the shape a coalesced record merges.
        let a = l.append(Payload::pattern(1, 256)).unwrap();
        let b = l.append(Payload::pattern(2, 256)).unwrap();
        assert_eq!(b.0, a.0 + 256);
        // One release over the merged span frees both chunks.
        l.release(a, 512);
        assert_eq!(l.live_bytes(), 0);
        assert_eq!(l.free_chunks(), 4);
        // The freed run is handed back front to back: new appends reuse it
        // address-contiguously.
        assert_eq!(l.append(Payload::pattern(3, 256)).unwrap(), LogAddr(0));
        assert_eq!(l.append(Payload::pattern(4, 256)).unwrap(), LogAddr(256));
    }

    #[test]
    fn release_straddling_a_chunk_seam_debits_each_side() {
        let mut l = log();
        let a = l.append(Payload::pattern(1, 256)).unwrap();
        l.append(Payload::pattern(2, 256)).unwrap();
        // Release the middle 256 bytes of the merged 512-byte span: the
        // tail half of chunk 0 plus the head half of chunk 1.
        l.release(LogAddr(a.0 + 128), 256);
        assert_eq!(l.live_bytes(), 256);
        // Neither chunk is empty yet, so nothing recycles.
        assert_eq!(l.free_chunks(), 2);
    }

    #[test]
    fn oversized_segment_rejected() {
        let mut l = log();
        assert!(l.append(Payload::pattern(1, 257)).is_err());
        assert!(l.append(Payload::empty()).is_err());
    }

    #[test]
    fn trailing_partial_capacity_unused() {
        let l = LogFile::new(1000, 256).unwrap(); // 3 whole chunks
        assert_eq!(l.capacity(), 768);
    }

    #[test]
    fn degenerate_configs_rejected() {
        assert!(LogFile::new(100, 0).is_err());
        assert!(LogFile::new(100, 256).is_err());
    }

    #[test]
    fn fits_accounts_for_active_chunk_room() {
        let mut l = LogFile::new(256, 256).unwrap(); // single chunk
        assert!(l.fits(256));
        l.append(Payload::pattern(1, 200)).unwrap();
        assert!(l.fits(56));
        assert!(!l.fits(57));
    }

    #[test]
    fn unbounded_log_is_cheap_and_works() {
        let mut l = LogFile::new(u64::MAX, 8 << 20).unwrap();
        for i in 0..100u64 {
            l.append(Payload::pattern(i, 8 << 20)).unwrap();
        }
        assert_eq!(l.live_bytes(), 100 * (8 << 20));
        assert!(l.fits(8 << 20));
        // Bookkeeping is proportional to touched chunks, not capacity.
        assert_eq!(l.appended_segments(), 100);
    }

    #[test]
    fn paper_scale_log_stays_virtual() {
        // A 5 GiB per-process DRAM log filled with 8 MiB segments.
        let mut l = LogFile::new(5 << 30, 8 << 20).unwrap();
        let seg = 8u64 << 20;
        let mut n = 0u64;
        while l.fits(seg) {
            l.append(Payload::pattern(n, seg)).unwrap();
            n += 1;
        }
        assert_eq!(n, 5 * 128);
        assert_eq!(l.live_bytes(), 5 << 30);
    }
}
