//! VPIC-IO: the checkpoint writer (§III-A, §III-C).
//!
//! "Scientific simulations such as VPIC typically progress in time steps.
//! After one or more time steps of computations, all processes
//! concurrently checkpoint data to the storage system." Each step writes
//! one shared HDF5 file of eight particle-property datasets; every process
//! contributes a contiguous slab per dataset. Between checkpoints the
//! simulation computes (the paper emulates this with a 60 s sleep — in
//! the reproduction the compute gap is a timing-plane parameter).

use crate::exec::for_each_rank;
use crate::layout::{VpicLayout, VPIC_VARS};
use univistor_mpi::driver::{FileHandle, FsDriver, OpenContext, OpenMode};
use univistor_mpi::Hints;
use univistor_sim::{Payload, SimResult};

/// The VPIC-IO kernel over an arbitrary ADIO driver.
#[derive(Debug, Clone, Copy)]
pub struct VpicIo {
    /// File geometry.
    pub layout: VpicLayout,
    /// Time steps to checkpoint.
    pub steps: usize,
}

impl VpicIo {
    /// Paper-sized kernel.
    pub fn paper(procs: usize, steps: usize) -> Self {
        VpicIo {
            layout: VpicLayout::paper(procs),
            steps,
        }
    }

    /// Scaled-down kernel for tests.
    pub fn scaled(procs: usize, steps: usize, particles_per_proc: u64) -> Self {
        VpicIo {
            layout: VpicLayout::scaled(procs, particles_per_proc),
            steps,
        }
    }

    fn ctx(&self, path: &str, rank: usize) -> OpenContext {
        OpenContext {
            path: path.to_string(),
            mode: OpenMode::Write,
            rank,
            nprocs: self.layout.procs,
            hints: Hints::new(),
        }
    }

    /// Write one timestep's checkpoint file through `driver` (rank loop):
    /// collective create, root writes the HDF5 metadata region, every rank
    /// writes its slab of each dataset, collective close (triggering the
    /// driver's flush path).
    pub fn write_step(&self, driver: &dyn FsDriver, step: usize) -> SimResult<()> {
        self.write_step_threaded(driver, step, 1)
    }

    /// [`Self::write_step`] with the slab writes spread over `threads` OS
    /// threads. The root's metadata write still happens first, alone (it
    /// is the collective-metadata barrier), and opens/closes stay
    /// collective rank loops.
    pub fn write_step_threaded(
        &self,
        driver: &dyn FsDriver,
        step: usize,
        threads: usize,
    ) -> SimResult<()> {
        let path = VpicLayout::file_path(step);
        let handles: Vec<FileHandle> = (0..self.layout.procs)
            .map(|rank| driver.open(&self.ctx(&path, rank)))
            .collect::<SimResult<_>>()?;

        // Root writes the metadata region (collective-metadata HDF5 mode,
        // the default for all non-ablation experiments).
        let sb_bytes = self.layout.superblock_for_step(step).to_bytes()?;
        let pad = univistor_h5::format::META_REGION_SIZE - sb_bytes.len() as u64;
        driver.write_at(
            &handles[0],
            0,
            0,
            Payload::chain([Payload::from_bytes(sb_bytes), Payload::zeros(pad)]),
        )?;

        for_each_rank(self.layout.procs, threads, |rank| {
            for var in 0..VPIC_VARS.len() {
                driver.write_at(
                    &handles[rank],
                    rank,
                    self.layout.slab_offset(var, rank),
                    self.layout.slab_payload(step, var, rank),
                )?;
            }
            Ok(())
        })?;
        for (rank, h) in handles.iter().enumerate() {
            driver.close(h, rank)?;
        }
        Ok(())
    }

    /// Write all timesteps.
    pub fn write_all(&self, driver: &dyn FsDriver) -> SimResult<()> {
        for step in 0..self.steps {
            self.write_step(driver, step)?;
        }
        Ok(())
    }

    /// Write all timesteps, `threads`-wide per step (steps stay ordered —
    /// checkpoints are sequential in time).
    pub fn write_all_threaded(&self, driver: &dyn FsDriver, threads: usize) -> SimResult<()> {
        for step in 0..self.steps {
            self.write_step_threaded(driver, step, threads)?;
        }
        Ok(())
    }

    /// Bytes checkpointed per step across all ranks (excluding metadata).
    pub fn bytes_per_step(&self) -> u64 {
        self.layout.bytes_per_proc() * self.layout.procs as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use univistor_mpi::MemDriver;

    #[test]
    fn step_file_contains_every_slab() {
        let d = MemDriver::new();
        let v = VpicIo::scaled(3, 2, 64);
        v.write_all(&d).unwrap();
        // Verify step 1 via a read-only handle.
        let path = VpicLayout::file_path(1);
        let h = d
            .open(&OpenContext {
                path: path.clone(),
                mode: OpenMode::Read,
                rank: 0,
                nprocs: 1,
                hints: Hints::new(),
            })
            .unwrap();
        for var in 0..8 {
            for rank in 0..3 {
                let got = d
                    .read_at(
                        &h,
                        0,
                        v.layout.slab_offset(var, rank),
                        v.layout.slab_bytes(),
                    )
                    .unwrap();
                assert!(
                    got.content_eq(&v.layout.slab_payload(1, var, rank)),
                    "var {var} rank {rank}"
                );
            }
        }
        assert_eq!(d.file_size(&h).unwrap(), v.layout.file_size());
    }

    #[test]
    fn metadata_region_parses_back() {
        let d = MemDriver::new();
        let v = VpicIo::scaled(2, 1, 16);
        v.write_all(&d).unwrap();
        let h = d
            .open(&OpenContext {
                path: VpicLayout::file_path(0),
                mode: OpenMode::Read,
                rank: 0,
                nprocs: 1,
                hints: Hints::new(),
            })
            .unwrap();
        let head = d.read_at(&h, 0, 0, 512).unwrap().to_bytes();
        let sb = univistor_h5::format::Superblock::from_bytes(&head).unwrap();
        assert_eq!(sb.datasets.len(), 8);
        assert_eq!(sb.dataset("ux").unwrap().size, v.layout.dataset_bytes());
    }

    #[test]
    fn bytes_per_step_matches_layout() {
        let v = VpicIo::paper(64, 5);
        assert_eq!(v.bytes_per_step(), 64 * (256 << 20));
    }
}
