//! The HDF5 micro-benchmark (§III-A): "each process creates a shared HDF5
//! file and writes/reads an independent but overall contiguous block of
//! data". The paper's runs use 256 MB per process.

use crate::exec::for_each_rank;
use univistor_mpi::driver::{FileHandle, FsDriver, OpenContext, OpenMode};
use univistor_mpi::Hints;
use univistor_sim::payload::splitmix64;
use univistor_sim::{Payload, SimResult};

/// The micro-benchmark: `procs` ranks, `bytes_per_proc` each, one shared
/// file.
#[derive(Debug, Clone, Copy)]
pub struct MicroIo {
    /// Participating ranks.
    pub procs: usize,
    /// Bytes each rank writes/reads.
    pub bytes_per_proc: u64,
}

impl MicroIo {
    /// The paper's configuration: 256 MB per process.
    pub fn paper(procs: usize) -> Self {
        MicroIo {
            procs,
            bytes_per_proc: 256 << 20,
        }
    }

    /// Scaled-down configuration for tests.
    pub fn scaled(procs: usize, bytes_per_proc: u64) -> Self {
        MicroIo {
            procs,
            bytes_per_proc,
        }
    }

    /// Total shared-file size.
    pub fn file_size(&self) -> u64 {
        self.bytes_per_proc * self.procs as u64
    }

    /// The block `rank` owns.
    pub fn block_range(&self, rank: usize) -> (u64, u64) {
        let start = rank as u64 * self.bytes_per_proc;
        (start, start + self.bytes_per_proc)
    }

    /// Deterministic content of `rank`'s block.
    pub fn block_payload(&self, rank: usize) -> Payload {
        Payload::pattern(splitmix64(MICRO_SEED ^ rank as u64), self.bytes_per_proc)
    }

    fn ctx(&self, path: &str, mode: OpenMode, rank: usize) -> OpenContext {
        OpenContext {
            path: path.to_string(),
            mode,
            rank,
            nprocs: self.procs,
            hints: Hints::new(),
        }
    }

    /// Open the shared file on all ranks (rank loop), returning handles.
    pub fn open_all(
        &self,
        driver: &dyn FsDriver,
        path: &str,
        mode: OpenMode,
    ) -> SimResult<Vec<FileHandle>> {
        (0..self.procs)
            .map(|rank| driver.open(&self.ctx(path, mode, rank)))
            .collect()
    }

    /// Close on all ranks.
    pub fn close_all(&self, driver: &dyn FsDriver, handles: &[FileHandle]) -> SimResult<()> {
        for (rank, h) in handles.iter().enumerate() {
            driver.close(h, rank)?;
        }
        Ok(())
    }

    /// Full write phase: open, per-rank block writes, close (which may
    /// trigger the driver's flush).
    pub fn write_phase(&self, driver: &dyn FsDriver, path: &str) -> SimResult<()> {
        self.write_phase_threaded(driver, path, 1)
    }

    /// Write phase with the block writes spread over `threads` OS threads
    /// (opens and closes stay collective rank loops). `threads <= 1` is
    /// the rank loop.
    pub fn write_phase_threaded(
        &self,
        driver: &dyn FsDriver,
        path: &str,
        threads: usize,
    ) -> SimResult<()> {
        let handles = self.open_all(driver, path, OpenMode::Write)?;
        for_each_rank(self.procs, threads, |rank| {
            let (start, _) = self.block_range(rank);
            driver.write_at(&handles[rank], rank, start, self.block_payload(rank))
        })?;
        self.close_all(driver, &handles)
    }

    /// Full read phase; `verify` additionally checks the bytes (only at
    /// test scale — verification materializes data).
    pub fn read_phase(&self, driver: &dyn FsDriver, path: &str, verify: bool) -> SimResult<()> {
        self.read_phase_threaded(driver, path, verify, 1)
    }

    /// Read phase over `threads` OS threads.
    pub fn read_phase_threaded(
        &self,
        driver: &dyn FsDriver,
        path: &str,
        verify: bool,
        threads: usize,
    ) -> SimResult<()> {
        let handles = self.open_all(driver, path, OpenMode::Read)?;
        for_each_rank(self.procs, threads, |rank| {
            // Like BD-CATS on the micro data: read a neighbour's block so
            // reads are not trivially local.
            let src = (rank + 1) % self.procs;
            let (start, _) = self.block_range(src);
            let got = driver.read_at(&handles[rank], rank, start, self.bytes_per_proc)?;
            if verify {
                assert!(
                    got.content_eq(&self.block_payload(src)),
                    "rank {rank} read corrupt block of rank {src}"
                );
            }
            Ok(())
        })?;
        self.close_all(driver, &handles)
    }
}

/// Base seed of the micro-benchmark's deterministic content.
const MICRO_SEED: u64 = 0x4d31_4352_305e_77aa;

#[cfg(test)]
mod tests {
    use super::*;
    use univistor_mpi::MemDriver;

    #[test]
    fn blocks_tile_the_file() {
        let m = MicroIo::scaled(4, 100);
        assert_eq!(m.file_size(), 400);
        assert_eq!(m.block_range(0), (0, 100));
        assert_eq!(m.block_range(3), (300, 400));
    }

    #[test]
    fn write_then_read_verifies_against_mem_driver() {
        let d = MemDriver::new();
        let m = MicroIo::scaled(8, 4096);
        m.write_phase(&d, "/micro").unwrap();
        m.read_phase(&d, "/micro", true).unwrap();
    }

    #[test]
    fn threaded_phases_match_rank_loop_results() {
        let d = MemDriver::new();
        let m = MicroIo::scaled(8, 4096);
        m.write_phase_threaded(&d, "/micro", 4).unwrap();
        // Threaded readers verify bytes written by threaded writers.
        m.read_phase_threaded(&d, "/micro", true, 4).unwrap();
        // And the rank loop sees the identical file.
        m.read_phase(&d, "/micro", true).unwrap();
    }

    #[test]
    fn payloads_are_rank_unique() {
        let m = MicroIo::scaled(2, 64);
        assert_ne!(m.block_payload(0), m.block_payload(1));
    }
}
