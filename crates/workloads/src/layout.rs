//! Shared file layout of the VPIC/BD-CATS HDF5 files.
//!
//! Both kernels address the same shared per-timestep HDF5 file: a metadata
//! region at the head (matching `univistor-h5`'s format) followed by eight
//! contiguous datasets, one per particle property. Each process owns a
//! contiguous slab of every dataset.

use univistor_h5::format::{Superblock, META_REGION_SIZE};
use univistor_sim::payload::splitmix64;
use univistor_sim::Payload;

/// The eight VPIC particle properties (32 bytes/particle total).
pub const VPIC_VARS: [&str; 8] = ["x", "y", "z", "ux", "uy", "uz", "energy", "id"];

/// Bytes per property value.
pub const BYTES_PER_VALUE: u64 = 4;

/// The paper's particle count per process (8 Mi → 256 MB/proc/step).
pub const PAPER_PARTICLES_PER_PROC: u64 = 8 << 20;

/// Geometry of one VPIC timestep file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VpicLayout {
    /// MPI processes writing the file.
    pub procs: usize,
    /// Particles per process.
    pub particles_per_proc: u64,
}

impl VpicLayout {
    /// Paper-sized layout.
    pub fn paper(procs: usize) -> Self {
        VpicLayout {
            procs,
            particles_per_proc: PAPER_PARTICLES_PER_PROC,
        }
    }

    /// Scaled-down layout for tests.
    pub fn scaled(procs: usize, particles_per_proc: u64) -> Self {
        VpicLayout {
            procs,
            particles_per_proc,
        }
    }

    /// Bytes of one variable's slab for one process.
    pub fn slab_bytes(&self) -> u64 {
        self.particles_per_proc * BYTES_PER_VALUE
    }

    /// Bytes one process writes per step (all variables).
    pub fn bytes_per_proc(&self) -> u64 {
        self.slab_bytes() * VPIC_VARS.len() as u64
    }

    /// Total bytes of one variable's dataset.
    pub fn dataset_bytes(&self) -> u64 {
        self.slab_bytes() * self.procs as u64
    }

    /// Absolute file offset of variable `var`'s dataset.
    pub fn dataset_offset(&self, var: usize) -> u64 {
        assert!(var < VPIC_VARS.len());
        META_REGION_SIZE + var as u64 * self.dataset_bytes()
    }

    /// Absolute file offset of `rank`'s slab of variable `var`.
    pub fn slab_offset(&self, var: usize, rank: usize) -> u64 {
        assert!(rank < self.procs);
        self.dataset_offset(var) + rank as u64 * self.slab_bytes()
    }

    /// Total file size (metadata region + all datasets).
    pub fn file_size(&self) -> u64 {
        META_REGION_SIZE + self.dataset_bytes() * VPIC_VARS.len() as u64
    }

    /// The HDF5-lite superblock describing the datasets, stamped with the
    /// provenance attributes VPIC writes (application name, timestep,
    /// particle count).
    pub fn superblock_for_step(&self, step: usize) -> Superblock {
        let mut sb = Superblock::default();
        for name in VPIC_VARS {
            sb.allocate(name, self.dataset_bytes(), BYTES_PER_VALUE as u32)
                .expect("static table fits");
        }
        sb.set_attr("", "application", b"VPIC".to_vec())
            .expect("valid");
        sb.set_attr("", "timestep", (step as u64).to_le_bytes().to_vec())
            .expect("valid");
        sb.set_attr(
            "",
            "particles_per_proc",
            self.particles_per_proc.to_le_bytes().to_vec(),
        )
        .expect("valid");
        sb
    }

    /// The HDF5-lite superblock describing the datasets (step 0 stamp).
    pub fn superblock(&self) -> Superblock {
        self.superblock_for_step(0)
    }

    /// Deterministic payload of `rank`'s slab of `var` at time `step`.
    pub fn slab_payload(&self, step: usize, var: usize, rank: usize) -> Payload {
        let seed = splitmix64(
            ((step as u64) << 48) ^ ((var as u64) << 40) ^ (rank as u64) ^ 0x9e37_79b9_7f4a_7c15,
        );
        Payload::pattern(seed, self.slab_bytes())
    }

    /// Path of the step's file.
    pub fn file_path(step: usize) -> String {
        format!("/vpic/step{step:04}.h5")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offsets_are_disjoint_and_ordered() {
        let l = VpicLayout::scaled(4, 1024);
        let mut prev_end = META_REGION_SIZE;
        for var in 0..8 {
            assert_eq!(l.dataset_offset(var), prev_end);
            for rank in 0..4 {
                let o = l.slab_offset(var, rank);
                assert_eq!(o, l.dataset_offset(var) + rank as u64 * l.slab_bytes());
            }
            prev_end += l.dataset_bytes();
        }
        assert_eq!(l.file_size(), prev_end);
    }

    #[test]
    fn paper_sizes_match_the_text() {
        // "each MPI process writes data related to eight million particles,
        //  and each particle has eight ... properties with a total size of
        //  32 bytes" → 256 MB/proc/step.
        let l = VpicLayout::paper(64);
        assert_eq!(l.bytes_per_proc(), 256 << 20);
        // "total size of output data is n × 8 × 2^20 × 32"
        assert_eq!(
            l.file_size() - META_REGION_SIZE,
            64 * 8 * (8 << 20) * BYTES_PER_VALUE
        );
    }

    #[test]
    fn payloads_differ_across_step_var_rank() {
        let l = VpicLayout::scaled(2, 64);
        let a = l.slab_payload(0, 0, 0);
        assert_ne!(a, l.slab_payload(1, 0, 0));
        assert_ne!(a, l.slab_payload(0, 1, 0));
        assert_ne!(a, l.slab_payload(0, 0, 1));
        assert_eq!(a, l.slab_payload(0, 0, 0));
    }

    #[test]
    fn superblock_has_eight_datasets() {
        let sb = VpicLayout::scaled(2, 64).superblock();
        assert_eq!(sb.datasets.len(), 8);
        assert_eq!(sb.dataset("energy").unwrap().elem_size, 4);
    }
}
