//! An IOR-style parametric benchmark generator.
//!
//! The paper's micro-benchmark is the simplest IOR shape (one contiguous
//! block per process). This module generalizes it the way the IOR tool
//! does, which downstream users need for their own studies:
//!
//! * **transfer size** — the unit of each `write_at` call;
//! * **block size** — the contiguous region a process owns per segment;
//! * **segments** — repetitions of the block pattern;
//! * **pattern** — `Segmented` (all of a process's blocks are adjacent:
//!   `[p0 s0][p0 s1]…[p1 s0]…`) or `Strided` (segments interleave across
//!   processes: `[p0 s0][p1 s0]…[p0 s1]…`), the classic N-to-1 contiguous
//!   vs. interleaved distinction that drives PFS lock behaviour.

use crate::exec::for_each_rank;
use univistor_mpi::driver::{FileHandle, FsDriver, OpenContext, OpenMode};
use univistor_mpi::Hints;
use univistor_sim::payload::splitmix64;
use univistor_sim::{Payload, SimResult};

/// How blocks of different processes interleave in the shared file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessPattern {
    /// Each process's blocks are contiguous (IOR default, `-s` segments
    /// appended per process).
    Segmented,
    /// Segment-major interleaving (IOR `-F 0` strided layout).
    Strided,
}

/// A parametric IOR-like run.
#[derive(Debug, Clone, Copy)]
pub struct IorConfig {
    /// Participating ranks.
    pub procs: usize,
    /// Contiguous bytes a rank owns per segment.
    pub block_size: u64,
    /// Bytes per I/O call (must divide `block_size`).
    pub transfer_size: u64,
    /// Segments (repetitions).
    pub segments: usize,
    /// Interleaving pattern.
    pub pattern: AccessPattern,
}

impl IorConfig {
    /// Validated constructor.
    pub fn new(
        procs: usize,
        block_size: u64,
        transfer_size: u64,
        segments: usize,
        pattern: AccessPattern,
    ) -> Self {
        assert!(procs > 0 && segments > 0);
        assert!(transfer_size > 0 && block_size > 0);
        assert!(
            block_size.is_multiple_of(transfer_size),
            "transfer size must divide block size"
        );
        IorConfig {
            procs,
            block_size,
            transfer_size,
            segments,
            pattern,
        }
    }

    /// Total file size.
    pub fn file_size(&self) -> u64 {
        self.block_size * self.procs as u64 * self.segments as u64
    }

    /// File offset of `(rank, segment)`'s block.
    pub fn block_offset(&self, rank: usize, segment: usize) -> u64 {
        assert!(rank < self.procs && segment < self.segments);
        match self.pattern {
            AccessPattern::Segmented => {
                (rank as u64 * self.segments as u64 + segment as u64) * self.block_size
            }
            AccessPattern::Strided => {
                (segment as u64 * self.procs as u64 + rank as u64) * self.block_size
            }
        }
    }

    /// Deterministic content of `(rank, segment)`'s block.
    pub fn block_payload(&self, rank: usize, segment: usize) -> Payload {
        let seed = splitmix64(0x1012_5eed ^ ((rank as u64) << 24) ^ segment as u64);
        Payload::pattern(seed, self.block_size)
    }

    fn ctx(&self, path: &str, mode: OpenMode, rank: usize) -> OpenContext {
        OpenContext {
            path: path.to_string(),
            mode,
            rank,
            nprocs: self.procs,
            hints: Hints::new(),
        }
    }

    /// Write phase (rank loop): every rank writes every segment's block in
    /// `transfer_size` calls, then the collective close runs.
    pub fn write_phase(&self, driver: &dyn FsDriver, path: &str) -> SimResult<()> {
        self.write_phase_threaded(driver, path, 1)
    }

    /// Write phase over `threads` OS threads. Each rank writes all of its
    /// segments' blocks (rank-major rather than the rank loop's
    /// segment-major order — the blocks are disjoint, so the resulting
    /// file is identical).
    pub fn write_phase_threaded(
        &self,
        driver: &dyn FsDriver,
        path: &str,
        threads: usize,
    ) -> SimResult<()> {
        let handles: Vec<FileHandle> = (0..self.procs)
            .map(|rank| driver.open(&self.ctx(path, OpenMode::Write, rank)))
            .collect::<SimResult<_>>()?;
        for_each_rank(self.procs, threads, |rank| {
            for segment in 0..self.segments {
                let base = self.block_offset(rank, segment);
                let payload = self.block_payload(rank, segment);
                let mut off = 0u64;
                while off < self.block_size {
                    driver.write_at(
                        &handles[rank],
                        rank,
                        base + off,
                        payload.slice(off, self.transfer_size),
                    )?;
                    off += self.transfer_size;
                }
            }
            Ok(())
        })?;
        for (rank, h) in handles.iter().enumerate() {
            driver.close(h, rank)?;
        }
        Ok(())
    }

    /// Read phase; each rank reads the blocks of the *next* rank (IOR's
    /// `-C` reorder, defeating client caches). `verify` checks content.
    pub fn read_phase(&self, driver: &dyn FsDriver, path: &str, verify: bool) -> SimResult<()> {
        self.read_phase_threaded(driver, path, verify, 1)
    }

    /// Read phase over `threads` OS threads.
    pub fn read_phase_threaded(
        &self,
        driver: &dyn FsDriver,
        path: &str,
        verify: bool,
        threads: usize,
    ) -> SimResult<()> {
        let handles: Vec<FileHandle> = (0..self.procs)
            .map(|rank| driver.open(&self.ctx(path, OpenMode::Read, rank)))
            .collect::<SimResult<_>>()?;
        for_each_rank(self.procs, threads, |rank| {
            for segment in 0..self.segments {
                let src = (rank + 1) % self.procs;
                let base = self.block_offset(src, segment);
                let got = driver.read_at(&handles[rank], rank, base, self.block_size)?;
                if verify {
                    assert!(
                        got.content_eq(&self.block_payload(src, segment)),
                        "rank {rank} read corrupt block (src {src}, segment {segment})"
                    );
                }
            }
            Ok(())
        })?;
        for (rank, h) in handles.iter().enumerate() {
            driver.close(h, rank)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use univistor_mpi::MemDriver;

    #[test]
    fn segmented_offsets_are_per_rank_contiguous() {
        let c = IorConfig::new(3, 100, 50, 2, AccessPattern::Segmented);
        assert_eq!(c.block_offset(0, 0), 0);
        assert_eq!(c.block_offset(0, 1), 100);
        assert_eq!(c.block_offset(1, 0), 200);
        assert_eq!(c.file_size(), 600);
    }

    #[test]
    fn strided_offsets_interleave() {
        let c = IorConfig::new(3, 100, 50, 2, AccessPattern::Strided);
        assert_eq!(c.block_offset(0, 0), 0);
        assert_eq!(c.block_offset(1, 0), 100);
        assert_eq!(c.block_offset(0, 1), 300);
    }

    #[test]
    fn offsets_tile_the_file_exactly() {
        for pattern in [AccessPattern::Segmented, AccessPattern::Strided] {
            let c = IorConfig::new(4, 64, 32, 3, pattern);
            let mut starts: Vec<u64> = (0..4)
                .flat_map(|r| (0..3).map(move |s| c.block_offset(r, s)))
                .collect();
            starts.sort_unstable();
            for (i, s) in starts.iter().enumerate() {
                assert_eq!(*s, i as u64 * 64, "{pattern:?}");
            }
        }
    }

    #[test]
    fn both_patterns_roundtrip_on_mem_driver() {
        for pattern in [AccessPattern::Segmented, AccessPattern::Strided] {
            let d = MemDriver::new();
            let c = IorConfig::new(4, 256, 64, 3, pattern);
            c.write_phase(&d, "/ior").unwrap();
            c.read_phase(&d, "/ior", true).unwrap();
        }
    }

    #[test]
    fn threaded_phases_match_rank_loop() {
        for pattern in [AccessPattern::Segmented, AccessPattern::Strided] {
            let d = MemDriver::new();
            let c = IorConfig::new(6, 256, 64, 3, pattern);
            c.write_phase_threaded(&d, "/ior", 3).unwrap();
            c.read_phase_threaded(&d, "/ior", true, 3).unwrap();
            c.read_phase(&d, "/ior", true).unwrap();
        }
    }

    #[test]
    #[should_panic(expected = "divide")]
    fn transfer_must_divide_block() {
        IorConfig::new(2, 100, 30, 1, AccessPattern::Segmented);
    }
}
