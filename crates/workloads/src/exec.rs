//! Rank execution: inline loop or threaded SPMD.
//!
//! Paper-scale experiments drive up to 8192 ranks through the driver one
//! at a time — deterministic and allocation-light, which is what the
//! figure benches need for stable CSVs. The threaded mode runs the same
//! per-rank closures on a pool of OS threads against the same shared
//! driver, the in-process stand-in for "all processes concurrently
//! checkpoint" (§III-A). It exists to *exercise and measure* the sharded
//! job locks (see DESIGN.md §"Concurrency model"); results are
//! byte-identical to the rank loop because every rank touches disjoint
//! file ranges, but operation interleaving (and thus e.g. log-chunk
//! ordering inside one chain) is scheduler-dependent.

/// Run `f(rank)` for every rank in `0..procs`.
///
/// With `threads <= 1` this is a plain in-order rank loop. Otherwise
/// `min(threads, procs)` scoped OS threads each take a strided subset of
/// ranks (thread `t` runs ranks `t, t + T, t + 2T, …`), so concurrently
/// running ranks are spread across clients rather than clustered. On
/// failure the error of the lowest-indexed failing thread is returned;
/// other threads still run their ranks to completion — there is no
/// cancellation, mirroring how an MPI job's ranks don't abort
/// mid-collective.
pub fn for_each_rank<E: Send>(
    procs: usize,
    threads: usize,
    f: impl Fn(usize) -> Result<(), E> + Sync,
) -> Result<(), E> {
    if threads <= 1 || procs <= 1 {
        for rank in 0..procs {
            f(rank)?;
        }
        return Ok(());
    }
    let workers = threads.min(procs);
    let results: Vec<Result<(), E>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|t| {
                let f = &f;
                s.spawn(move || {
                    for rank in (t..procs).step_by(workers) {
                        f(rank)?;
                    }
                    Ok(())
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("rank worker panicked"))
            .collect()
    });
    for r in results {
        r?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn inline_mode_runs_every_rank_in_order() {
        let seen = std::sync::Mutex::new(Vec::new());
        for_each_rank::<()>(5, 1, |rank| {
            seen.lock().unwrap().push(rank);
            Ok(())
        })
        .unwrap();
        assert_eq!(seen.into_inner().unwrap(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn threaded_mode_covers_every_rank_exactly_once() {
        let hits: Vec<AtomicU64> = (0..64).map(|_| AtomicU64::new(0)).collect();
        for_each_rank::<()>(64, 4, |rank| {
            hits[rank].fetch_add(1, Ordering::Relaxed);
            Ok(())
        })
        .unwrap();
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn more_threads_than_ranks_is_fine() {
        let hits: Vec<AtomicU64> = (0..3).map(|_| AtomicU64::new(0)).collect();
        for_each_rank::<()>(3, 8, |rank| {
            hits[rank].fetch_add(1, Ordering::Relaxed);
            Ok(())
        })
        .unwrap();
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn first_error_by_rank_order_wins() {
        let err = for_each_rank(16, 4, |rank| {
            if rank == 6 || rank == 9 {
                Err(rank)
            } else {
                Ok(())
            }
        })
        .unwrap_err();
        // Rank 9 fails on thread 1, rank 6 on thread 2; results are
        // scanned in thread order, so thread 1's error wins.
        assert_eq!(err, 9);
    }
}
