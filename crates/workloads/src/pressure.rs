//! Tier-pressure streaming workload: every rank appends a fresh batch of
//! records each round, so the file grows monotonically and the fast
//! tiers — sized well below the stream by the caller's calibration —
//! stay above their watermarks for the whole run. This is the write side
//! of a checkpoint stream: nothing is overwritten and nothing is read
//! back until the end, which makes every span cold and eligible for the
//! background drain. The generator is driver-agnostic like its siblings;
//! benches time [`TierPressure::write_round`] per round and close
//! separately so flush/catch-up costs are attributable.

use univistor_mpi::driver::{FileHandle, FsDriver, OpenContext, OpenMode};
use univistor_mpi::Hints;
use univistor_sim::payload::splitmix64;
use univistor_sim::{Payload, SimResult};

/// The streaming pressure workload: `rounds` rounds in which each of
/// `procs` ranks writes `slots_per_proc` records of `record` bytes into
/// a fresh region of one shared file.
#[derive(Debug, Clone, Copy)]
pub struct TierPressure {
    /// Participating ranks.
    pub procs: usize,
    /// Records each rank writes per round.
    pub slots_per_proc: u64,
    /// Bytes per record.
    pub record: u64,
    /// Rounds (checkpoint steps); each appends a fresh region.
    pub rounds: u64,
}

impl TierPressure {
    /// Bytes one round adds to the file.
    pub fn round_bytes(&self) -> u64 {
        self.procs as u64 * self.slots_per_proc * self.record
    }

    /// Final file size after all rounds.
    pub fn file_size(&self) -> u64 {
        self.rounds * self.round_bytes()
    }

    /// Offset of `rank`'s `slot`-th record in `round` (round-major, then
    /// rank-major: each round is a contiguous region, each rank owns a
    /// contiguous share of it).
    pub fn offset(&self, round: u64, rank: usize, slot: u64) -> u64 {
        round * self.round_bytes()
            + rank as u64 * self.slots_per_proc * self.record
            + slot * self.record
    }

    /// Deterministic content of that record.
    pub fn payload(&self, round: u64, rank: usize, slot: u64) -> Payload {
        let mix = round
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add((rank as u64) << 20)
            .wrapping_add(slot);
        Payload::pattern(splitmix64(PRESSURE_SEED ^ mix), self.record)
    }

    fn ctx(&self, path: &str, mode: OpenMode, rank: usize) -> OpenContext {
        OpenContext {
            path: path.to_string(),
            mode,
            rank,
            nprocs: self.procs,
            hints: Hints::new(),
        }
    }

    /// Open the shared file on all ranks.
    pub fn open_all(
        &self,
        driver: &dyn FsDriver,
        path: &str,
        mode: OpenMode,
    ) -> SimResult<Vec<FileHandle>> {
        (0..self.procs)
            .map(|rank| driver.open(&self.ctx(path, mode, rank)))
            .collect()
    }

    /// Close on all ranks (the last close triggers the driver's flush).
    pub fn close_all(&self, driver: &dyn FsDriver, handles: &[FileHandle]) -> SimResult<()> {
        for (rank, h) in handles.iter().enumerate() {
            driver.close(h, rank)?;
        }
        Ok(())
    }

    /// Write one round: every rank fills its share of the round's region.
    pub fn write_round(
        &self,
        driver: &dyn FsDriver,
        handles: &[FileHandle],
        round: u64,
    ) -> SimResult<()> {
        for (rank, handle) in handles.iter().enumerate() {
            for slot in 0..self.slots_per_proc {
                driver.write_at(
                    handle,
                    rank,
                    self.offset(round, rank, slot),
                    self.payload(round, rank, slot),
                )?;
            }
        }
        Ok(())
    }

    /// The whole stream: open, all rounds, close.
    pub fn write_phase(&self, driver: &dyn FsDriver, path: &str) -> SimResult<()> {
        let handles = self.open_all(driver, path, OpenMode::Write)?;
        for round in 0..self.rounds {
            self.write_round(driver, &handles, round)?;
        }
        self.close_all(driver, &handles)
    }

    /// Read every record back and check it against the pattern.
    pub fn verify(&self, driver: &dyn FsDriver, path: &str) -> SimResult<()> {
        let handles = self.open_all(driver, path, OpenMode::Read)?;
        for round in 0..self.rounds {
            for (rank, handle) in handles.iter().enumerate() {
                for slot in 0..self.slots_per_proc {
                    let off = self.offset(round, rank, slot);
                    let got = driver.read_at(handle, rank, off, self.record)?;
                    assert!(
                        got.content_eq(&self.payload(round, rank, slot)),
                        "round {round} rank {rank} slot {slot}: corrupt record"
                    );
                }
            }
        }
        self.close_all(driver, &handles)
    }
}

/// Base seed of the pressure stream's deterministic content.
const PRESSURE_SEED: u64 = 0x7143_5052_3355_u64;

#[cfg(test)]
mod tests {
    use super::*;
    use univistor_mpi::MemDriver;

    #[test]
    fn regions_tile_the_file_without_overlap() {
        let w = TierPressure {
            procs: 3,
            slots_per_proc: 4,
            record: 64,
            rounds: 2,
        };
        assert_eq!(w.round_bytes(), 768);
        assert_eq!(w.file_size(), 1536);
        // Consecutive (round, rank, slot) triples are contiguous.
        let mut expect = 0;
        for round in 0..2 {
            for rank in 0..3 {
                for slot in 0..4 {
                    assert_eq!(w.offset(round, rank, slot), expect);
                    expect += 64;
                }
            }
        }
    }

    #[test]
    fn stream_verifies_against_mem_driver() {
        let d = MemDriver::new();
        let w = TierPressure {
            procs: 4,
            slots_per_proc: 4,
            record: 256,
            rounds: 3,
        };
        w.write_phase(&d, "/pressure").unwrap();
        w.verify(&d, "/pressure").unwrap();
    }

    #[test]
    fn payloads_differ_across_rounds_and_ranks() {
        let w = TierPressure {
            procs: 2,
            slots_per_proc: 1,
            record: 64,
            rounds: 2,
        };
        assert_ne!(w.payload(0, 0, 0), w.payload(1, 0, 0));
        assert_ne!(w.payload(0, 0, 0), w.payload(0, 1, 0));
    }
}
