//! BD-CATS-IO: the analysis reader (§III-A, §III-D).
//!
//! BD-CATS is a parallel clustering code; its I/O kernel "reads all eight
//! properties of all particles" produced by VPIC. Reading is partitioned
//! by particle: each analysis rank takes a contiguous particle range of
//! every dataset. When the analysis runs with fewer ranks than the
//! producer (the workflow experiments use half), each reader covers
//! several producers' slabs — exercising the cross-process, cross-node and
//! cross-tier read paths.

use crate::exec::for_each_rank;
use crate::layout::{VpicLayout, VPIC_VARS};
use univistor_mpi::driver::{FileHandle, FsDriver, OpenContext, OpenMode};
use univistor_mpi::Hints;
use univistor_sim::{Payload, SimResult};

/// The BD-CATS-IO kernel.
#[derive(Debug, Clone, Copy)]
pub struct BdCatsIo {
    /// Geometry of the file being analyzed (the *producer's* layout).
    pub layout: VpicLayout,
    /// Analysis ranks (may differ from the producer's rank count).
    pub readers: usize,
}

impl BdCatsIo {
    /// An analysis job of `readers` ranks over `layout`.
    pub fn new(layout: VpicLayout, readers: usize) -> Self {
        assert!(readers > 0);
        BdCatsIo { layout, readers }
    }

    /// The byte range of dataset `var` that `reader` covers.
    pub fn read_range(&self, var: usize, reader: usize) -> (u64, u64) {
        let dataset = self.layout.dataset_bytes();
        let base = dataset / self.readers as u64;
        let rem = dataset % self.readers as u64;
        let start: u64 = (0..reader as u64).map(|r| base + u64::from(r < rem)).sum();
        let len = base + u64::from((reader as u64) < rem);
        let offset = self.layout.dataset_offset(var);
        (offset + start, offset + start + len)
    }

    fn ctx(&self, path: &str, rank: usize) -> OpenContext {
        OpenContext {
            path: path.to_string(),
            mode: OpenMode::Read,
            rank,
            nprocs: self.readers,
            hints: Hints::new(),
        }
    }

    /// Read one timestep back (rank loop). With `verify`, every byte is
    /// checked against the producer's deterministic pattern (test scale
    /// only — verification materializes the data).
    pub fn read_step(&self, driver: &dyn FsDriver, step: usize, verify: bool) -> SimResult<()> {
        self.read_step_threaded(driver, step, verify, 1)
    }

    /// [`Self::read_step`] with the per-reader range reads spread over
    /// `threads` OS threads (opens/closes stay collective rank loops).
    pub fn read_step_threaded(
        &self,
        driver: &dyn FsDriver,
        step: usize,
        verify: bool,
        threads: usize,
    ) -> SimResult<()> {
        let path = VpicLayout::file_path(step);
        let handles: Vec<FileHandle> = (0..self.readers)
            .map(|rank| driver.open(&self.ctx(&path, rank)))
            .collect::<SimResult<_>>()?;
        for_each_rank(self.readers, threads, |rank| {
            for var in 0..VPIC_VARS.len() {
                let (lo, hi) = self.read_range(var, rank);
                if hi == lo {
                    continue;
                }
                let got = driver.read_at(&handles[rank], rank, lo, hi - lo)?;
                if verify {
                    let expect = self.expected(step, var, lo, hi - lo);
                    assert!(
                        got.content_eq(&expect),
                        "reader {rank} var {var} range [{lo}, {hi}) corrupt"
                    );
                }
            }
            Ok(())
        })?;
        for (rank, h) in handles.iter().enumerate() {
            driver.close(h, rank)?;
        }
        Ok(())
    }

    /// Read every timestep back.
    pub fn read_all(&self, driver: &dyn FsDriver, steps: usize, verify: bool) -> SimResult<()> {
        for step in 0..steps {
            self.read_step(driver, step, verify)?;
        }
        Ok(())
    }

    /// Read every timestep back, `threads`-wide per step.
    pub fn read_all_threaded(
        &self,
        driver: &dyn FsDriver,
        steps: usize,
        verify: bool,
        threads: usize,
    ) -> SimResult<()> {
        for step in 0..steps {
            self.read_step_threaded(driver, step, verify, threads)?;
        }
        Ok(())
    }

    /// Bytes each full-timestep read moves.
    pub fn bytes_per_step(&self) -> u64 {
        self.layout.dataset_bytes() * VPIC_VARS.len() as u64
    }

    /// The expected content of an absolute file range within dataset
    /// `var` — stitched from the producers' slab payloads.
    fn expected(&self, step: usize, var: usize, abs_offset: u64, len: u64) -> Payload {
        let slab = self.layout.slab_bytes();
        let ds_off = self.layout.dataset_offset(var);
        let mut parts = Vec::new();
        let mut cur = abs_offset - ds_off;
        let end = cur + len;
        while cur < end {
            let producer = (cur / slab) as usize;
            let within = cur % slab;
            let take = (slab - within).min(end - cur);
            parts.push(
                self.layout
                    .slab_payload(step, var, producer)
                    .slice(within, take),
            );
            cur += take;
        }
        Payload::chain(parts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vpic::VpicIo;
    use univistor_mpi::MemDriver;

    #[test]
    fn read_ranges_tile_each_dataset() {
        let layout = VpicLayout::scaled(4, 100);
        let b = BdCatsIo::new(layout, 3);
        for var in 0..8 {
            let mut cur = layout.dataset_offset(var);
            for reader in 0..3 {
                let (lo, hi) = b.read_range(var, reader);
                assert_eq!(lo, cur);
                cur = hi;
            }
            assert_eq!(cur, layout.dataset_offset(var) + layout.dataset_bytes());
        }
    }

    #[test]
    fn full_pipeline_verifies_with_half_readers() {
        let d = MemDriver::new();
        let v = VpicIo::scaled(4, 2, 64);
        v.write_all(&d).unwrap();
        // Half as many readers as writers, as in the workflow experiments.
        let b = BdCatsIo::new(v.layout, 2);
        b.read_all(&d, 2, true).unwrap();
    }

    #[test]
    fn threaded_pipeline_verifies_against_threaded_writer() {
        let d = MemDriver::new();
        let v = VpicIo::scaled(4, 2, 64);
        v.write_all_threaded(&d, 4).unwrap();
        let b = BdCatsIo::new(v.layout, 4);
        b.read_all_threaded(&d, 2, true, 4).unwrap();
        // The rank loop agrees byte-for-byte.
        b.read_all(&d, 2, true).unwrap();
    }

    #[test]
    fn uneven_reader_counts_still_cover_everything() {
        let d = MemDriver::new();
        let v = VpicIo::scaled(4, 1, 50); // 200-byte datasets
        v.write_all(&d).unwrap();
        let b = BdCatsIo::new(v.layout, 3); // 200 % 3 != 0
        b.read_all(&d, 1, true).unwrap();
    }

    #[test]
    fn bytes_per_step_covers_all_vars() {
        let layout = VpicLayout::scaled(4, 100);
        let b = BdCatsIo::new(layout, 2);
        assert_eq!(b.bytes_per_step(), 8 * 4 * 100 * 4);
    }
}
