//! # univistor-workloads — the paper's I/O workload generators
//!
//! §III-A uses three workloads, all reproduced here as driver-agnostic
//! generators (they run unchanged against UniviStor, Data Elevator, or
//! direct Lustre through the [`univistor_mpi::FsDriver`] boundary):
//!
//! * **HDF5 micro-benchmark** ([`micro`]) — every process writes/reads an
//!   independent but overall contiguous block of one shared file;
//! * **VPIC-IO** ([`vpic`]) — the I/O kernel of a space-weather plasma
//!   simulation: per time step, each process writes eight particle-field
//!   variables, 8 Mi particles × 4 bytes each → 256 MB/process/step, into
//!   a shared HDF5 file per step;
//! * **BD-CATS-IO** ([`bdcats`]) — the matching analysis kernel: a
//!   parallel clustering code reading *all eight* properties of *all*
//!   particles back, each process taking a contiguous slab;
//! * **IOR-style generator** ([`ior`]) — a parametric
//!   transfer/block/segment benchmark with segmented and strided
//!   interleavings, for studies beyond the paper's fixed shapes;
//! * **Tier-pressure stream** ([`pressure`]) — a checkpoint-style
//!   append stream sized past the fast tiers' watermarks, for the
//!   background-tiering benchmarks.
//!
//! Each generator offers a **rank-loop** executor (drives the driver one
//! rank at a time — no threads, used at paper scale up to 8192 processes
//! and by the figure benches, whose CSVs must be deterministic) and a
//! **threaded** variant (`*_threaded(…, threads)`, built on
//! [`exec::for_each_rank`]) that runs the per-rank data phases on a pool
//! of OS threads against the same shared driver — the mode that actually
//! exercises the sharded job locks. Generators produce deterministic
//! per-(step, variable, rank) payload patterns so that any reader can
//! verify any byte regardless of execution mode.

pub mod bdcats;
pub mod exec;
pub mod ior;
pub mod layout;
pub mod micro;
pub mod pressure;
pub mod vpic;

pub use bdcats::BdCatsIo;
pub use exec::for_each_rank;
pub use ior::{AccessPattern, IorConfig};
pub use layout::VpicLayout;
pub use micro::MicroIo;
pub use pressure::TierPressure;
pub use vpic::VpicIo;
