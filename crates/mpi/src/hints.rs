//! MPI_Info-style hints and driver selection.
//!
//! ROMIO selects UniviStor when the environment variable
//! `ROMIO_FSTYPE_FORCE` is set to `UniviStor` (§II-A). We carry the same
//! key through an explicit hint table instead of process environment, so
//! experiments stay hermetic.

use std::collections::HashMap;

/// The ROMIO driver-selection key.
pub const FSTYPE_KEY: &str = "ROMIO_FSTYPE_FORCE";

/// Key for enabling the lightweight workflow management (§II-E).
pub const ENABLE_WORKFLOW_KEY: &str = "ENABLE_WORKFLOW";

/// Key for the HDF5 collective-metadata optimization (§II-F).
pub const HDF5_COLLECTIVE_KEY: &str = "UNIVISTOR_HDF5_COLLECTIVE";

/// An MPI_Info-like set of string hints.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Hints {
    map: HashMap<String, String>,
}

impl Hints {
    /// Empty hints.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set a hint, builder-style.
    pub fn with(mut self, key: &str, value: &str) -> Self {
        self.map.insert(key.to_string(), value.to_string());
        self
    }

    /// Set a hint in place.
    pub fn set(&mut self, key: &str, value: &str) {
        self.map.insert(key.to_string(), value.to_string());
    }

    /// Get a hint.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.map.get(key).map(String::as_str)
    }

    /// Boolean hint: "1", "true", "yes", "on" (case-insensitive) are true;
    /// anything else or absence is false.
    pub fn get_bool(&self, key: &str) -> bool {
        self.get(key)
            .map(|v| matches!(v.to_ascii_lowercase().as_str(), "1" | "true" | "yes" | "on"))
            .unwrap_or(false)
    }

    /// Integer hint, `None` when absent or malformed.
    pub fn get_u64(&self, key: &str) -> Option<u64> {
        self.get(key).and_then(|v| v.parse().ok())
    }

    /// The forced file-system type, if any.
    pub fn fstype(&self) -> Option<&str> {
        self.get(FSTYPE_KEY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_roundtrip() {
        let h = Hints::new().with(FSTYPE_KEY, "UniviStor");
        assert_eq!(h.fstype(), Some("UniviStor"));
        assert_eq!(h.get("missing"), None);
    }

    #[test]
    fn bool_parsing() {
        for v in ["1", "true", "YES", "On"] {
            assert!(Hints::new().with("k", v).get_bool("k"), "{v}");
        }
        for v in ["0", "false", "off", "banana"] {
            assert!(!Hints::new().with("k", v).get_bool("k"), "{v}");
        }
        assert!(!Hints::new().get_bool("absent"));
    }

    #[test]
    fn u64_parsing() {
        assert_eq!(Hints::new().with("n", "42").get_u64("n"), Some(42));
        assert_eq!(Hints::new().with("n", "x").get_u64("n"), None);
    }

    #[test]
    fn set_overwrites() {
        let mut h = Hints::new();
        h.set("k", "a");
        h.set("k", "b");
        assert_eq!(h.get("k"), Some("b"));
    }
}
