//! Threaded SPMD runtime.
//!
//! [`World::run`] launches `n` ranks as OS threads executing the same
//! closure — the shape of an MPI program. [`Comm`] provides the collectives
//! the reproduction needs with *functional* semantics; their analytic time
//! costs live in [`univistor_sim::latency`] and are charged by the timing
//! plane, not here.
//!
//! The runtime is intended for correctness tests, examples, and workflow
//! coordination (where a reader genuinely blocks on a writer). Paper-scale
//! rank counts (up to 8192) are driven rank-by-rank by the bench harness
//! without threads.

use std::any::Any;
use std::sync::Mutex;
use std::sync::{Arc, Barrier};

struct CommState {
    barrier: Barrier,
    /// Broadcast slot. Overwritten by each bcast root; barriers order the
    /// accesses so no clearing is needed.
    slot: Mutex<Option<Box<dyn Any + Send>>>,
    /// Gather slots, one per rank. Same overwrite discipline.
    gather: Mutex<Vec<Option<Box<dyn Any + Send>>>>,
}

/// A communicator: this rank's endpoint into the SPMD group.
#[derive(Clone)]
pub struct Comm {
    rank: usize,
    size: usize,
    state: Arc<CommState>,
}

impl Comm {
    /// This rank's id.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks.
    pub fn size(&self) -> usize {
        self.size
    }

    /// True for rank 0 — the "root" used by collective optimizations.
    pub fn is_root(&self) -> bool {
        self.rank == 0
    }

    /// Synchronize all ranks.
    pub fn barrier(&self) {
        self.state.barrier.wait();
    }

    /// Broadcast `value` from `root` to every rank. Non-root ranks pass
    /// `None`; the root must pass `Some`.
    pub fn bcast<T: Clone + Send + 'static>(&self, root: usize, value: Option<T>) -> T {
        assert!(root < self.size, "bcast root {root} out of range");
        if self.rank == root {
            let v = value.expect("bcast root must supply a value");
            *self.state.slot.lock().unwrap() = Some(Box::new(v));
        }
        self.barrier();
        let out = {
            let guard = self.state.slot.lock().unwrap();
            guard
                .as_ref()
                .expect("root stored the value before the barrier")
                .downcast_ref::<T>()
                .expect("all ranks must bcast the same type")
                .clone()
        };
        self.barrier();
        out
    }

    /// Gather one value from every rank; all ranks receive the full vector
    /// (MPI_Allgather).
    pub fn allgather<T: Clone + Send + 'static>(&self, value: T) -> Vec<T> {
        {
            let mut slots = self.state.gather.lock().unwrap();
            slots[self.rank] = Some(Box::new(value));
        }
        self.barrier();
        let out: Vec<T> = {
            let slots = self.state.gather.lock().unwrap();
            slots
                .iter()
                .map(|s| {
                    s.as_ref()
                        .expect("every rank stored before the barrier")
                        .downcast_ref::<T>()
                        .expect("all ranks must gather the same type")
                        .clone()
                })
                .collect()
        };
        self.barrier();
        out
    }

    /// Sum a `u64` across ranks; every rank receives the total.
    pub fn allreduce_sum(&self, value: u64) -> u64 {
        self.allgather(value).into_iter().sum()
    }

    /// Maximum across ranks.
    pub fn allreduce_max(&self, value: u64) -> u64 {
        self.allgather(value).into_iter().max().unwrap_or(0)
    }
}

/// Factory for SPMD thread groups.
pub struct World;

impl World {
    /// Run `f` on `size` ranks as threads; returns per-rank results in rank
    /// order. Panics in any rank propagate.
    pub fn run<R, F>(size: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(Comm) -> R + Send + Sync,
    {
        assert!(size > 0, "world size must be positive");
        let state = Arc::new(CommState {
            barrier: Barrier::new(size),
            slot: Mutex::new(None),
            gather: Mutex::new((0..size).map(|_| None).collect()),
        });
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..size)
                .map(|rank| {
                    let comm = Comm {
                        rank,
                        size,
                        state: Arc::clone(&state),
                    };
                    let f = &f;
                    scope.spawn(move || f(comm))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("rank thread panicked"))
                .collect()
        })
    }

    /// Run two coupled applications concurrently (e.g. a simulation and an
    /// analysis program in one job). Returns (results_a, results_b).
    pub fn run_coupled<RA, RB, FA, FB>(
        size_a: usize,
        size_b: usize,
        fa: FA,
        fb: FB,
    ) -> (Vec<RA>, Vec<RB>)
    where
        RA: Send,
        RB: Send,
        FA: Fn(Comm) -> RA + Send + Sync,
        FB: Fn(Comm) -> RB + Send + Sync,
    {
        std::thread::scope(|scope| {
            let ha = scope.spawn(|| World::run(size_a, fa));
            let hb = scope.spawn(|| World::run(size_b, fb));
            (
                ha.join().expect("app A panicked"),
                hb.join().expect("app B panicked"),
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn ranks_are_distinct_and_complete() {
        let mut ranks = World::run(8, |c| c.rank());
        ranks.sort_unstable();
        assert_eq!(ranks, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn bcast_from_root() {
        let got = World::run(6, |c| {
            let v = c.bcast(0, c.is_root().then(|| vec![1u32, 2, 3]));
            v.iter().sum::<u32>()
        });
        assert_eq!(got, vec![6; 6]);
    }

    #[test]
    fn bcast_from_nonzero_root() {
        let got = World::run(4, |c| c.bcast(2, (c.rank() == 2).then_some(99u8)));
        assert_eq!(got, vec![99; 4]);
    }

    #[test]
    fn repeated_collectives_do_not_cross_talk() {
        let got = World::run(4, |c| {
            let a = c.bcast(0, c.is_root().then_some(1u64));
            let b = c.bcast(1, (c.rank() == 1).then_some(2u64));
            let s = c.allreduce_sum(c.rank() as u64);
            let m = c.allreduce_max(c.rank() as u64);
            (a, b, s, m)
        });
        for g in got {
            assert_eq!(g, (1, 2, 6, 3));
        }
    }

    #[test]
    fn allgather_orders_by_rank() {
        let got = World::run(5, |c| c.allgather(c.rank() * 10));
        for g in got {
            assert_eq!(g, vec![0, 10, 20, 30, 40]);
        }
    }

    #[test]
    fn barrier_actually_synchronizes() {
        // All ranks increment before the barrier; after it, every rank must
        // observe the full count.
        let counter = AtomicU64::new(0);
        let seen = World::run(8, |c| {
            counter.fetch_add(1, Ordering::SeqCst);
            c.barrier();
            counter.load(Ordering::SeqCst)
        });
        assert_eq!(seen, vec![8; 8]);
    }

    #[test]
    fn coupled_apps_run_concurrently() {
        // B waits for A's signal through shared state: only possible if the
        // two worlds genuinely overlap in time.
        let flag = AtomicU64::new(0);
        let (a, b) = World::run_coupled(
            2,
            2,
            |c| {
                if c.is_root() {
                    flag.store(1, Ordering::SeqCst);
                }
                c.barrier();
                1u32
            },
            |c| {
                while flag.load(Ordering::SeqCst) == 0 {
                    std::thread::yield_now();
                }
                c.barrier();
                2u32
            },
        );
        assert_eq!(a, vec![1, 1]);
        assert_eq!(b, vec![2, 2]);
    }

    #[test]
    #[should_panic(expected = "world size")]
    fn zero_world_rejected() {
        World::run(0, |_| ());
    }
}
