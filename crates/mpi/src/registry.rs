//! Driver selection — the `ROMIO_FSTYPE_FORCE` mechanism.
//!
//! ROMIO picks an ADIO driver per file system; UniviStor is enabled by
//! forcing the type via the environment (§II-A). The [`DriverRegistry`]
//! reproduces that: drivers register under their [`FsDriver::name`], and
//! opens resolve through the hint table's `ROMIO_FSTYPE_FORCE` entry,
//! falling back to a default (the plain PFS driver in ROMIO's case).

use crate::driver::FsDriver;
use crate::hints::{Hints, FSTYPE_KEY};
use std::collections::HashMap;
use std::sync::Arc;
use univistor_sim::{SimError, SimResult};

/// A set of selectable ADIO drivers.
#[derive(Default)]
pub struct DriverRegistry {
    drivers: HashMap<&'static str, Arc<dyn FsDriver>>,
    default: Option<&'static str>,
}

impl DriverRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a driver under its own name. The first registration also
    /// becomes the default unless [`set_default`](Self::set_default) is
    /// called.
    pub fn register(&mut self, driver: Arc<dyn FsDriver>) -> &mut Self {
        let name = driver.name();
        if self.default.is_none() {
            self.default = Some(name);
        }
        self.drivers.insert(name, driver);
        self
    }

    /// Choose the fallback driver used when no `ROMIO_FSTYPE_FORCE` hint
    /// is present.
    pub fn set_default(&mut self, name: &'static str) -> SimResult<()> {
        if !self.drivers.contains_key(name) {
            return Err(SimError::InvalidConfig(format!(
                "cannot default to unregistered driver '{name}'"
            )));
        }
        self.default = Some(name);
        Ok(())
    }

    /// Resolve the driver the given hints select.
    pub fn select(&self, hints: &Hints) -> SimResult<Arc<dyn FsDriver>> {
        let name = match hints.get(FSTYPE_KEY) {
            Some(forced) => forced,
            None => self
                .default
                .ok_or_else(|| SimError::InvalidConfig("no drivers registered".into()))?,
        };
        self.drivers
            .get(name)
            .cloned()
            .ok_or_else(|| SimError::InvalidConfig(format!("unknown file system type '{name}'")))
    }

    /// Registered driver names (sorted, for diagnostics).
    pub fn names(&self) -> Vec<&'static str> {
        let mut v: Vec<&'static str> = self.drivers.keys().copied().collect();
        v.sort_unstable();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::MemDriver;

    #[test]
    fn forced_selection_and_default() {
        let mut reg = DriverRegistry::new();
        reg.register(Arc::new(MemDriver::new()));
        // Default falls back to the first registration.
        let d = reg.select(&Hints::new()).unwrap();
        assert_eq!(d.name(), "mem");
        // Forcing the same name works; forcing an unknown one errors.
        let d = reg.select(&Hints::new().with(FSTYPE_KEY, "mem")).unwrap();
        assert_eq!(d.name(), "mem");
        assert!(reg
            .select(&Hints::new().with(FSTYPE_KEY, "UniviStor"))
            .is_err());
    }

    #[test]
    fn empty_registry_errors() {
        let reg = DriverRegistry::new();
        assert!(reg.select(&Hints::new()).is_err());
    }

    #[test]
    fn set_default_validates() {
        let mut reg = DriverRegistry::new();
        reg.register(Arc::new(MemDriver::new()));
        assert!(reg.set_default("nope").is_err());
        assert!(reg.set_default("mem").is_ok());
        assert_eq!(reg.names(), vec!["mem"]);
    }
}
