//! The ADIO boundary: pluggable file-system drivers.
//!
//! ADIO "allows file system developers to implement their own file system
//! feature for MPI-IO while exposing to applications the same MPI-IO
//! interface" (§II-F). [`FsDriver`] is that boundary here: UniviStor, Data
//! Elevator, direct-Lustre, and the in-memory test driver all implement it,
//! and applications/workloads only ever see [`crate::file::MpiFile`].
//!
//! Drivers take `&self` and use interior mutability: in the threaded SPMD
//! runtime every rank calls into the same driver instance concurrently,
//! exactly like ROMIO inside a multi-process job.

use crate::hints::Hints;
use univistor_sim::{Payload, SimResult};

/// File access mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpenMode {
    /// Read-only (`MPI_MODE_RDONLY`).
    Read,
    /// Write-only, create (`MPI_MODE_WRONLY | MPI_MODE_CREATE`).
    Write,
    /// Read-write.
    ReadWrite,
}

impl OpenMode {
    /// True when the mode permits writing.
    pub fn writable(self) -> bool {
        matches!(self, OpenMode::Write | OpenMode::ReadWrite)
    }

    /// True when the mode permits reading.
    pub fn readable(self) -> bool {
        matches!(self, OpenMode::Read | OpenMode::ReadWrite)
    }
}

/// Everything a driver learns at open time.
#[derive(Debug, Clone)]
pub struct OpenContext {
    /// File path within the unified namespace.
    pub path: String,
    /// Access mode.
    pub mode: OpenMode,
    /// Calling rank.
    pub rank: usize,
    /// Total ranks participating in this (collective) open.
    pub nprocs: usize,
    /// MPI_Info hints.
    pub hints: Hints,
}

/// An open file, as seen by one rank.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileHandle {
    /// Driver-assigned file id.
    pub fid: u64,
    /// Path (kept for diagnostics and close-time bookkeeping).
    pub path: String,
    /// Mode granted at open.
    pub mode: OpenMode,
    /// Ranks participating in the collective open (ROMIO keeps the
    /// communicator in its file struct; drivers need the size for
    /// collective close bookkeeping).
    pub nprocs: usize,
}

/// An ADIO-style file-system driver.
pub trait FsDriver: Send + Sync {
    /// Driver name, as matched against `ROMIO_FSTYPE_FORCE`.
    fn name(&self) -> &'static str;

    /// Open (collectively — every rank calls this with the same path).
    fn open(&self, ctx: &OpenContext) -> SimResult<FileHandle>;

    /// Independent write at an explicit offset.
    fn write_at(&self, h: &FileHandle, rank: usize, offset: u64, data: Payload) -> SimResult<()>;

    /// Independent read at an explicit offset.
    fn read_at(&self, h: &FileHandle, rank: usize, offset: u64, len: u64) -> SimResult<Payload>;

    /// Close (collective). Drivers trigger flush/unlock work here.
    fn close(&self, h: &FileHandle, rank: usize) -> SimResult<()>;

    /// Current logical file size.
    fn file_size(&self, h: &FileHandle) -> SimResult<u64>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_mode_capabilities() {
        assert!(OpenMode::Write.writable() && !OpenMode::Write.readable());
        assert!(OpenMode::Read.readable() && !OpenMode::Read.writable());
        assert!(OpenMode::ReadWrite.readable() && OpenMode::ReadWrite.writable());
    }
}
