//! A trivial in-memory ADIO driver.
//!
//! One flat namespace of sparse files in process memory. Used as the test
//! backend for the MPI-IO layer and as node-local scratch in examples. It
//! deliberately has *no* tiering, placement or contention intelligence —
//! that is what `univistor-core` adds.

use crate::driver::{FileHandle, FsDriver, OpenContext};
use std::collections::HashMap;
use std::sync::Mutex;
use univistor_sim::{Payload, SimError, SimResult, SparseBuffer};

#[derive(Debug, Default)]
struct MemFile {
    fid: u64,
    data: SparseBuffer,
    size: u64,
}

/// In-memory file system driver.
#[derive(Debug, Default)]
pub struct MemDriver {
    inner: Mutex<MemState>,
}

#[derive(Debug, Default)]
struct MemState {
    files: HashMap<String, MemFile>,
    next_fid: u64,
}

impl MemDriver {
    /// An empty in-memory namespace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of files currently stored.
    pub fn file_count(&self) -> usize {
        self.inner.lock().unwrap().files.len()
    }
}

impl FsDriver for MemDriver {
    fn name(&self) -> &'static str {
        "mem"
    }

    fn open(&self, ctx: &OpenContext) -> SimResult<FileHandle> {
        let mut st = self.inner.lock().unwrap();
        if !st.files.contains_key(&ctx.path) {
            if !ctx.mode.writable() {
                return Err(SimError::InvalidConfig(format!(
                    "no such file '{}'",
                    ctx.path
                )));
            }
            let fid = st.next_fid;
            st.next_fid += 1;
            st.files.insert(
                ctx.path.clone(),
                MemFile {
                    fid,
                    data: SparseBuffer::new(),
                    size: 0,
                },
            );
        }
        let f = &st.files[&ctx.path];
        Ok(FileHandle {
            fid: f.fid,
            path: ctx.path.clone(),
            mode: ctx.mode,
            nprocs: ctx.nprocs,
        })
    }

    fn write_at(&self, h: &FileHandle, _rank: usize, offset: u64, data: Payload) -> SimResult<()> {
        if !h.mode.writable() {
            return Err(SimError::InvalidConfig(format!(
                "file '{}' not opened for writing",
                h.path
            )));
        }
        let mut st = self.inner.lock().unwrap();
        let f = st
            .files
            .get_mut(&h.path)
            .ok_or_else(|| SimError::InvalidConfig(format!("stale handle for '{}'", h.path)))?;
        let end = offset + data.len();
        f.data.write(offset, data);
        f.size = f.size.max(end);
        Ok(())
    }

    fn read_at(&self, h: &FileHandle, _rank: usize, offset: u64, len: u64) -> SimResult<Payload> {
        if !h.mode.readable() {
            return Err(SimError::InvalidConfig(format!(
                "file '{}' not opened for reading",
                h.path
            )));
        }
        let st = self.inner.lock().unwrap();
        let f = st
            .files
            .get(&h.path)
            .ok_or_else(|| SimError::InvalidConfig(format!("stale handle for '{}'", h.path)))?;
        f.data.read_exact(offset, len)
    }

    fn close(&self, _h: &FileHandle, _rank: usize) -> SimResult<()> {
        Ok(())
    }

    fn file_size(&self, h: &FileHandle) -> SimResult<u64> {
        let st = self.inner.lock().unwrap();
        st.files
            .get(&h.path)
            .map(|f| f.size)
            .ok_or_else(|| SimError::InvalidConfig(format!("stale handle for '{}'", h.path)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::OpenMode;
    use crate::hints::Hints;

    fn ctx(path: &str, mode: OpenMode) -> OpenContext {
        OpenContext {
            path: path.into(),
            mode,
            rank: 0,
            nprocs: 1,
            hints: Hints::new(),
        }
    }

    #[test]
    fn write_read_roundtrip() {
        let d = MemDriver::new();
        let h = d.open(&ctx("/a", OpenMode::ReadWrite)).unwrap();
        d.write_at(&h, 0, 5, Payload::from_bytes(&b"abc"[..]))
            .unwrap();
        let got = d.read_at(&h, 0, 5, 3).unwrap();
        assert_eq!(&got.to_bytes()[..], b"abc");
        assert_eq!(d.file_size(&h).unwrap(), 8);
    }

    #[test]
    fn open_missing_readonly_fails() {
        let d = MemDriver::new();
        assert!(d.open(&ctx("/missing", OpenMode::Read)).is_err());
    }

    #[test]
    fn mode_enforcement() {
        let d = MemDriver::new();
        let hw = d.open(&ctx("/a", OpenMode::Write)).unwrap();
        d.write_at(&hw, 0, 0, Payload::from_bytes(&b"x"[..]))
            .unwrap();
        assert!(d.read_at(&hw, 0, 0, 1).is_err());
        let hr = d.open(&ctx("/a", OpenMode::Read)).unwrap();
        assert!(d.write_at(&hr, 0, 0, Payload::zeros(1)).is_err());
        assert!(d.read_at(&hr, 0, 0, 1).is_ok());
    }

    #[test]
    fn reopen_preserves_contents_and_fid() {
        let d = MemDriver::new();
        let h1 = d.open(&ctx("/a", OpenMode::Write)).unwrap();
        d.write_at(&h1, 0, 0, Payload::from_bytes(&b"persist"[..]))
            .unwrap();
        d.close(&h1, 0).unwrap();
        let h2 = d.open(&ctx("/a", OpenMode::Read)).unwrap();
        assert_eq!(h1.fid, h2.fid);
        assert_eq!(&d.read_at(&h2, 0, 0, 7).unwrap().to_bytes()[..], b"persist");
    }
}
