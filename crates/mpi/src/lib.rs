//! # univistor-mpi — simulated MPI runtime, MPI-IO, and the ADIO layer
//!
//! UniviStor is implemented as an I/O driver in MPI-IO's Abstract-Device
//! Interface (ADIO) inside MPICH/ROMIO (§II-F): file-system developers plug
//! a driver into ROMIO and applications keep using plain `MPI_File_*`
//! calls; the driver is selected with `ROMIO_FSTYPE_FORCE`. This crate
//! reproduces that architecture:
//!
//! * [`comm`] — a threaded SPMD runtime: [`comm::World::run`] launches `n`
//!   ranks as threads; [`comm::Comm`] provides `barrier`, `bcast`,
//!   `gather`, and `allreduce` with functional semantics (the analytic
//!   *costs* of collectives live in `univistor_sim::latency`);
//! * [`driver`] — the ADIO boundary: the [`driver::FsDriver`] trait
//!   (open/read/write/close + file metadata) every storage backend
//!   implements — UniviStor, Data Elevator, direct Lustre, and the
//!   in-memory test driver here;
//! * [`hints`] — MPI_Info-style hints plus the `ROMIO_FSTYPE_FORCE`
//!   selection variable;
//! * `file` — the `MPI_File` façade ([`MpiFile`]): collective open/close and
//!   independent/collective reads and writes on top of a driver;
//! * [`mem`] — a trivial single-space in-memory driver used by tests and
//!   as scratch space;
//! * [`registry`] — `ROMIO_FSTYPE_FORCE`-style driver selection.
//!
//! Rank counts in the threaded runtime are test-scale (≤ a few hundred);
//! paper-scale experiments drive the same driver code rank-by-rank from the
//! bench harness without spawning threads.

pub mod comm;
pub mod driver;
pub mod file;
pub mod hints;
pub mod mem;
pub mod registry;

pub use comm::{Comm, World};
pub use driver::{FileHandle, FsDriver, OpenContext, OpenMode};
pub use file::MpiFile;
pub use hints::{Hints, FSTYPE_KEY};
pub use mem::MemDriver;
pub use registry::DriverRegistry;
