//! The `MPI_File` façade.
//!
//! Applications (and the HDF5-lite layer) use [`MpiFile`] exactly like
//! `MPI_File_*`: collective open and close, independent (`write_at`) and
//! collective (`write_at_all`) data operations. Everything below the façade
//! is the selected [`FsDriver`] — which is the whole point of the ADIO
//! architecture: UniviStor slots in without application changes.

use crate::comm::Comm;
pub use crate::driver::OpenMode;
use crate::driver::{FileHandle, FsDriver, OpenContext};
use crate::hints::Hints;
use univistor_sim::{Payload, SimError, SimResult};

/// An open MPI file on one rank.
pub struct MpiFile<'d> {
    driver: &'d dyn FsDriver,
    comm: Comm,
    handle: FileHandle,
}

impl<'d> MpiFile<'d> {
    /// Collective open: every rank of `comm` must call with identical
    /// arguments. If any rank fails, all ranks return an error.
    pub fn open(
        comm: &Comm,
        driver: &'d dyn FsDriver,
        path: &str,
        mode: OpenMode,
        hints: Hints,
    ) -> SimResult<MpiFile<'d>> {
        let ctx = OpenContext {
            path: path.to_string(),
            mode,
            rank: comm.rank(),
            nprocs: comm.size(),
            hints,
        };
        let result = driver.open(&ctx);
        // Agree on the outcome so no rank proceeds alone.
        let ok_flags = comm.allgather(result.is_ok() as u8);
        let all_ok = ok_flags.iter().all(|&f| f == 1);
        match (all_ok, result) {
            (true, Ok(handle)) => Ok(MpiFile {
                driver,
                comm: comm.clone(),
                handle,
            }),
            (false, Ok(handle)) => {
                // Another rank failed: undo our open.
                let _ = driver.close(&handle, comm.rank());
                Err(SimError::InvalidConfig(format!(
                    "collective open of '{path}' failed on another rank"
                )))
            }
            (_, Err(e)) => Err(e),
        }
    }

    /// The underlying handle (for driver-specific inspection in tests).
    pub fn handle(&self) -> &FileHandle {
        &self.handle
    }

    /// Independent write at `offset`.
    pub fn write_at(&self, offset: u64, data: Payload) -> SimResult<()> {
        self.driver
            .write_at(&self.handle, self.comm.rank(), offset, data)
    }

    /// Collective write: all ranks participate; a barrier closes the phase
    /// (the time cost of the collective is charged by the timing plane).
    pub fn write_at_all(&self, offset: u64, data: Payload) -> SimResult<()> {
        let r = self.write_at(offset, data);
        self.comm.barrier();
        r
    }

    /// Independent read at `offset`.
    pub fn read_at(&self, offset: u64, len: u64) -> SimResult<Payload> {
        self.driver
            .read_at(&self.handle, self.comm.rank(), offset, len)
    }

    /// Collective read.
    pub fn read_at_all(&self, offset: u64, len: u64) -> SimResult<Payload> {
        let r = self.read_at(offset, len);
        self.comm.barrier();
        r
    }

    /// Current file size.
    pub fn size(&self) -> SimResult<u64> {
        self.driver.file_size(&self.handle)
    }

    /// Collective close. Consumes the file; drivers trigger flush/unlock
    /// work from here (§II-A: "server-side flush service is triggered ...
    /// at the file close time").
    pub fn close(self) -> SimResult<()> {
        // All ranks must arrive before the close side effects (flush,
        // lock release) are considered complete.
        self.comm.barrier();
        let r = self.driver.close(&self.handle, self.comm.rank());
        self.comm.barrier();
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::World;
    use crate::mem::MemDriver;

    #[test]
    fn collective_write_then_read() {
        let driver = MemDriver::new();
        let sums = World::run(4, |comm| {
            let f = MpiFile::open(&comm, &driver, "/shared", OpenMode::ReadWrite, Hints::new())
                .unwrap();
            let mine = Payload::from_bytes(vec![comm.rank() as u8; 8]);
            f.write_at_all(comm.rank() as u64 * 8, mine).unwrap();
            // Every rank reads the whole file back.
            let all = f.read_at_all(0, 32).unwrap().to_bytes();
            f.close().unwrap();
            all.iter().map(|b| *b as u32).sum::<u32>()
        });
        // 8 bytes each of 0,1,2,3 → sum 48, observed identically by all.
        assert_eq!(sums, vec![48; 4]);
    }

    #[test]
    fn failed_open_fails_on_all_ranks() {
        let driver = MemDriver::new();
        let results = World::run(3, |comm| {
            MpiFile::open(&comm, &driver, "/missing", OpenMode::Read, Hints::new()).is_err()
        });
        assert_eq!(results, vec![true; 3]);
    }

    #[test]
    fn size_visible_across_ranks() {
        let driver = MemDriver::new();
        let sizes = World::run(2, |comm| {
            let f = MpiFile::open(&comm, &driver, "/s", OpenMode::ReadWrite, Hints::new()).unwrap();
            if comm.is_root() {
                f.write_at(100, Payload::zeros(28)).unwrap();
            }
            comm.barrier();
            let s = f.size().unwrap();
            f.close().unwrap();
            s
        });
        assert_eq!(sizes, vec![128; 2]);
    }
}
